// Property-based sweeps across randomized scenarios: physical invariants
// that must hold for ANY seed, policy, weather, or duty pattern. These are
// the guardrails that catch bookkeeping bugs the targeted unit tests miss.

#include <gtest/gtest.h>

#include <cmath>
#include <iterator>
#include <numeric>
#include <string>

#include "battery/battery.hpp"
#include "battery/fleet.hpp"
#include "battery/step_math.hpp"
#include "fault/fault.hpp"
#include "power/router.hpp"
#include "sim/datacenter.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "util/sim_clock.hpp"
#include "workload/demand.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"

namespace baat {
namespace {

// ---------------------------------------------------------------------------
// Battery invariants under random duty.
// ---------------------------------------------------------------------------

class BatteryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatteryFuzz, InvariantsUnderRandomDuty) {
  util::Rng rng{GetParam()};
  battery::Battery bat{battery::LeadAcidParams{}, battery::AgingParams{},
                       battery::ThermalParams{}, rng.uniform(0.9, 1.1),
                       rng.uniform(0.8, 1.2), rng.uniform(0.2, 1.0)};
  double prev_health = bat.health();
  double prev_ah_out = 0.0;
  double prev_time = 0.0;
  for (int step = 0; step < 2000; ++step) {
    const double amps = rng.uniform(-20.0, 30.0);
    const auto res = bat.step(util::amperes(amps), util::minutes(1.0));

    // SoC bounded; health never recovers; counters monotone.
    ASSERT_GE(bat.soc(), 0.0);
    ASSERT_LE(bat.soc(), 1.0);
    ASSERT_LE(bat.health(), prev_health + 1e-12);
    ASSERT_GE(bat.counters().ah_discharged.value(), prev_ah_out);
    ASSERT_GT(bat.counters().time_total.value(), prev_time);
    // Actual current never exceeds the request in magnitude.
    if (amps >= 0.0) {
      ASSERT_LE(res.actual_current.value(), amps + 1e-9);
      ASSERT_GE(res.actual_current.value(), -1e-9);
    } else {
      ASSERT_GE(res.actual_current.value(), amps - 1e-9);
      ASSERT_LE(res.actual_current.value(), 1e-9);
    }
    // Terminal voltage stays physical.
    ASSERT_GT(res.terminal_voltage.value(), 5.0);
    ASSERT_LT(res.terminal_voltage.value(), 16.0);

    prev_health = bat.health();
    prev_ah_out = bat.counters().ah_discharged.value();
    prev_time = bat.counters().time_total.value();
  }
  // Range bins always partition the discharge total.
  const auto& c = bat.counters();
  const double bins = c.ah_by_range[0].value() + c.ah_by_range[1].value() +
                      c.ah_by_range[2].value() + c.ah_by_range[3].value();
  EXPECT_NEAR(bins, c.ah_discharged.value(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatteryFuzz,
                         ::testing::Range<std::uint64_t>(1u, 26u));

// ---------------------------------------------------------------------------
// Router conservation across random fleets.
// ---------------------------------------------------------------------------

class RouterFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterFuzz, ConservationAndBalance) {
  util::Rng rng{GetParam()};
  const std::size_t n = 2 + rng.uniform_index(6);
  std::vector<battery::Battery> bats;
  std::vector<util::Watts> demands;
  for (std::size_t i = 0; i < n; ++i) {
    bats.emplace_back(battery::LeadAcidParams{}, battery::AgingParams{},
                      battery::ThermalParams{}, 1.0, 1.0, rng.uniform(0.0, 1.0));
    demands.push_back(util::watts(rng.uniform(0.0, 200.0)));
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (int tick = 0; tick < 200; ++tick) {
    const auto solar = util::watts(rng.uniform(0.0, 1200.0));
    const auto r = power::route_power(solar, demands, bats, order,
                                      power::RouterParams{}, util::minutes(1.0));
    double solar_used = 0.0;
    for (const auto& node : r.nodes) {
      // Per-node balance: demand fully attributed.
      ASSERT_NEAR(node.demand.value(),
                  node.solar_used.value() + node.utility_used.value() +
                      node.battery_delivered.value() + node.unmet.value(),
                  1e-6);
      ASSERT_GE(node.unmet.value(), -1e-9);
      solar_used += node.solar_used.value() + node.charge_drawn.value();
    }
    // Solar fully attributed: used + stored + curtailed.
    ASSERT_NEAR(solar_used + r.solar_curtailed.value(), solar.value(), 1e-6);
    ASSERT_GE(r.solar_curtailed.value(), -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterFuzz,
                         ::testing::Range<std::uint64_t>(1u, 21u));

// ---------------------------------------------------------------------------
// Metric invariants on random power tables.
// ---------------------------------------------------------------------------

class MetricsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricsFuzz, RangesAlwaysHold) {
  util::Rng rng{GetParam()};
  battery::Battery bat{battery::LeadAcidParams{}, battery::AgingParams{},
                       battery::ThermalParams{}, 1.0, 1.0, rng.uniform(0.1, 1.0)};
  telemetry::PowerTableParams params;
  params.chemistry = battery::LeadAcidParams{};
  telemetry::PowerTable table{params};
  telemetry::BatterySensor sensor{telemetry::SensorNoise{}, rng.fork("sensor")};

  for (int step = 0; step < 1500; ++step) {
    const auto res = bat.step(util::amperes(rng.uniform(-15.0, 25.0)),
                              util::minutes(1.0));
    table.record(sensor.read(bat, res.actual_current,
                             util::Seconds{step * 60.0}),
                 util::minutes(1.0));
    const auto m = telemetry::compute_metrics(table, telemetry::MetricParams{});
    ASSERT_GE(m.nat, 0.0);
    ASSERT_GE(m.cf, 0.0);
    ASSERT_LE(m.cf, 5.0);
    ASSERT_GE(m.pc, 0.25 - 1e-9);
    ASSERT_LE(m.pc, 1.0 + 1e-9);
    ASSERT_GE(m.pc_health, 0.0);
    ASSERT_LE(m.pc_health, 1.0);
    ASSERT_GE(m.ddt, 0.0);
    ASSERT_LE(m.ddt, 1.0);
    ASSERT_GE(m.dr_c_rate, -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsFuzz,
                         ::testing::Range<std::uint64_t>(11u, 21u));

// ---------------------------------------------------------------------------
// Whole-cluster invariants across policies and weather.
// ---------------------------------------------------------------------------

struct ClusterCase {
  core::PolicyKind policy;
  solar::DayType weather;
  std::uint64_t seed;
};

class ClusterSweep : public ::testing::TestWithParam<ClusterCase> {};

TEST_P(ClusterSweep, DayLevelInvariants) {
  const ClusterCase c = GetParam();
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.policy = c.policy;
  cfg.seed = c.seed;
  if (c.policy == core::PolicyKind::BaatPlanned) {
    cfg.policy_params.planned.cycles_plan = 800.0;
  }
  sim::Cluster cluster{cfg};
  const sim::DayResult r = cluster.run_day(c.weather);

  // Energy attribution.
  EXPECT_NEAR(r.meter.solar_available().value(),
              r.meter.solar_to_load().value() + r.meter.solar_to_charge().value() +
                  r.meter.solar_curtailed().value(),
              1.0);
  // Work and counters sane.
  EXPECT_GE(r.throughput_work, 0.0);
  EXPECT_GE(r.jobs_finished, 0);
  EXPECT_NEAR(r.soc_histogram.total_weight(),
              static_cast<double>(cfg.nodes) * 86400.0, 10.0);
  for (const auto& n : r.nodes) {
    EXPECT_GE(n.soc_min, 0.0);
    EXPECT_LE(n.soc_end, 1.0);
    EXPECT_LE(n.critical_soc_time.value(), n.low_soc_time.value() + 1e-9);
    EXPECT_LE(n.health, 1.0);
    EXPECT_GT(n.health, 0.5);
  }
  // Batteries never escape bounds.
  for (const auto& b : cluster.batteries()) {
    EXPECT_GE(b.soc(), 0.0);
    EXPECT_LE(b.soc(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyWeather, ClusterSweep,
    ::testing::Values(
        ClusterCase{core::PolicyKind::EBuff, solar::DayType::Sunny, 1},
        ClusterCase{core::PolicyKind::EBuff, solar::DayType::Rainy, 2},
        ClusterCase{core::PolicyKind::BaatS, solar::DayType::Cloudy, 3},
        ClusterCase{core::PolicyKind::BaatH, solar::DayType::Cloudy, 4},
        ClusterCase{core::PolicyKind::Baat, solar::DayType::Rainy, 5},
        ClusterCase{core::PolicyKind::Baat, solar::DayType::Sunny, 6},
        ClusterCase{core::PolicyKind::BaatPlanned, solar::DayType::Cloudy, 7},
        ClusterCase{core::PolicyKind::BaatPredictive, solar::DayType::Rainy, 8},
        ClusterCase{core::PolicyKind::BaatPredictive, solar::DayType::Cloudy, 9}));

// ---------------------------------------------------------------------------
// The same physical invariants under every fault class. Faults corrupt what
// the controller *sees* (or remove supply/capacity), never the bookkeeping:
// energy attribution, SoC bounds and monotone aging counters must survive
// any of them.
// ---------------------------------------------------------------------------

/// One spec string per fault class, "" = clean baseline, "combined" = all
/// sensor/supply/meter classes at once.
const char* const kFaultClasses[] = {
    "",
    "sensor_noise:soc:0.05",
    "sensor_bias:voltage:0.3",
    "sensor_stuck:p=0.01:hold=20",
    "probe_stale:p=0.3",
    "pv_dropout:day=0:hours=3",
    "pv_derate:factor=0.6",
    "cell_weak:bank=0:capacity=0.75",
    "cell_open:bank=1",
    "meter_glitch:p=0.05",
    "sensor_noise:current:0.2,sensor_stuck:p=0.005,pv_derate:factor=0.8,"
    "meter_glitch:p=0.02,probe_stale:p=0.1",
};

sim::ScenarioConfig faulted_scenario(const char* spec, std::uint64_t seed) {
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.nodes = 2;  // keep the per-case day run cheap
  cfg.policy = core::PolicyKind::Baat;
  cfg.seed = seed;
  if (spec[0] != '\0') {
    cfg.faults = fault::parse_fault_plan(spec);
    cfg.guard.enabled = true;
  }
  return cfg;
}

struct FaultCase {
  std::size_t fault_class;
  std::uint64_t seed;
};

class FaultedClusterSweep : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultedClusterSweep, PhysicalInvariantsSurviveFaults) {
  const FaultCase fc = GetParam();
  const sim::ScenarioConfig cfg =
      faulted_scenario(kFaultClasses[fc.fault_class], fc.seed);
  sim::Cluster cluster{cfg};

  struct Baseline {
    double ah = 0.0, time = 0.0, health = 1.0;
  };
  std::vector<Baseline> before(cfg.nodes);
  for (std::size_t i = 0; i < cfg.nodes; ++i) {
    before[i] = {cluster.batteries()[i].counters().ah_discharged.value(),
                 cluster.batteries()[i].counters().time_total.value(),
                 cluster.batteries()[i].health()};
  }

  const solar::DayType weather =
      fc.seed % 3 == 0 ? solar::DayType::Rainy
                       : (fc.seed % 3 == 1 ? solar::DayType::Sunny
                                           : solar::DayType::Cloudy);
  const sim::DayResult r = cluster.run_day(weather);

  // Energy attribution holds no matter what the controller was shown.
  EXPECT_NEAR(r.meter.solar_available().value(),
              r.meter.solar_to_load().value() + r.meter.solar_to_charge().value() +
                  r.meter.solar_curtailed().value(),
              1.0);
  EXPECT_TRUE(std::isfinite(r.throughput_work));
  EXPECT_GE(r.throughput_work, 0.0);
  EXPECT_NEAR(r.soc_histogram.total_weight(),
              static_cast<double>(cfg.nodes) * 86400.0, 10.0);

  for (const auto& n : r.nodes) {
    EXPECT_GE(n.soc_min, 0.0);
    EXPECT_LE(n.soc_end, 1.0);
    EXPECT_LE(n.critical_soc_time.value(), n.low_soc_time.value() + 1e-9);
    EXPECT_GE(n.ah_discharged.value(), 0.0);
  }

  for (std::size_t i = 0; i < cfg.nodes; ++i) {
    const battery::Battery& b = cluster.batteries()[i];
    // SoC bounded and finite under every fault class.
    ASSERT_TRUE(std::isfinite(b.soc()));
    EXPECT_GE(b.soc(), 0.0);
    EXPECT_LE(b.soc(), 1.0);
    // True accumulators are monotone; health never recovers.
    EXPECT_GE(b.counters().ah_discharged.value(), before[i].ah);
    EXPECT_GT(b.counters().time_total.value(), before[i].time);
    EXPECT_LE(b.health(), before[i].health + 1e-12);
    EXPECT_GE(b.health(), 0.0);
    // Bounded (EWMA/fraction) aging metrics stay in range.
    const auto m = cluster.life_metrics(i);
    EXPECT_GE(m.nat, 0.0);
    EXPECT_GE(m.ddt, 0.0);
    EXPECT_LE(m.ddt, 1.0);
    EXPECT_GE(m.pc_health, 0.0);
    EXPECT_LE(m.pc_health, 1.0);
  }
}

std::vector<FaultCase> all_fault_cases() {
  std::vector<FaultCase> cases;
  for (std::size_t f = 0; f < std::size(kFaultClasses); ++f) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      cases.push_back(FaultCase{f, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(FaultClassesBySeed, FaultedClusterSweep,
                         ::testing::ValuesIn(all_fault_cases()));

// ---------------------------------------------------------------------------
// Open-cell battery fuzz: a dead unit must stay inert and finite under any
// duty pattern (the zero-capacity class that used to NaN the SoC).
// ---------------------------------------------------------------------------

class OpenCellFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpenCellFuzz, DeadUnitStaysInertAndFinite) {
  util::Rng rng{GetParam()};
  battery::Battery bat{battery::LeadAcidParams{}, battery::AgingParams{},
                       battery::ThermalParams{}, 1.0, 1.0, rng.uniform(0.1, 1.0)};
  const int fail_at = static_cast<int>(rng.uniform_index(200));
  for (int step = 0; step < 400; ++step) {
    if (step == fail_at) bat.fail_open();
    const auto res = bat.step(util::amperes(rng.uniform(-25.0, 25.0)),
                              util::minutes(1.0));
    ASSERT_TRUE(std::isfinite(bat.soc()));
    ASSERT_GE(bat.soc(), 0.0);
    ASSERT_LE(bat.soc(), 1.0);
    if (step >= fail_at) {
      ASSERT_DOUBLE_EQ(res.actual_current.value(), 0.0);
      ASSERT_DOUBLE_EQ(bat.health(), 0.0);
      ASSERT_TRUE(bat.end_of_life());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpenCellFuzz,
                         ::testing::Range<std::uint64_t>(1u, 11u));

// ---------------------------------------------------------------------------
// Faulted runs are exactly reproducible: same seed + same plan = identical
// results, run to run and at any sweep worker count.
// ---------------------------------------------------------------------------

class FaultDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultDeterminism, RepeatRunsAreBitIdentical) {
  const char* spec = kFaultClasses[std::size(kFaultClasses) - 1];  // combined
  auto run_once = [&] {
    sim::Cluster cluster{faulted_scenario(spec, GetParam())};
    return cluster.run_day(solar::DayType::Cloudy);
  };
  const sim::DayResult a = run_once();
  const sim::DayResult b = run_once();
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_EQ(a.throughput_work, b.throughput_work);
  EXPECT_EQ(a.meter.solar_to_load().value(), b.meter.solar_to_load().value());
  EXPECT_EQ(a.meter.solar_curtailed().value(), b.meter.solar_curtailed().value());
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.dvfs_transitions, b.dvfs_transitions);
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].soc_end, b.nodes[i].soc_end);
    EXPECT_EQ(a.nodes[i].ah_discharged.value(), b.nodes[i].ah_discharged.value());
    EXPECT_EQ(a.nodes[i].health, b.nodes[i].health);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultDeterminism,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// The sweep engine must give byte-identical faulted results at any worker
// count — this is the test the TSan CI shard runs with BAAT_JOBS=4.
TEST(FaultSweepDeterminism, WorkerCountNeverChangesResults) {
  auto run_grid = [](std::size_t jobs) {
    sim::SweepOptions opt;
    opt.jobs = jobs;
    return sim::sweep_map(
        6,
        [](std::size_t i) {
          const char* spec = kFaultClasses[1 + i % (std::size(kFaultClasses) - 1)];
          sim::Cluster cluster{faulted_scenario(spec, 100 + i)};
          const sim::DayResult r = cluster.run_day(solar::DayType::Cloudy);
          return std::vector<double>{r.throughput_work,
                                     r.meter.solar_to_load().value(),
                                     r.nodes[0].soc_end, r.nodes[1].soc_end,
                                     r.nodes[0].ah_discharged.value()};
        },
        opt);
  };
  const auto serial = run_grid(1);
  const auto parallel = run_grid(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].size(), parallel[i].size());
    for (std::size_t k = 0; k < serial[i].size(); ++k) {
      EXPECT_EQ(serial[i][k], parallel[i][k]) << "point " << i << " field " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-day faulted runs keep their aggregate invariants (probe series,
// histogram mass, lifetime projection stays finite).
// ---------------------------------------------------------------------------

class FaultedMultiDay : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultedMultiDay, AggregatesStayConsistent) {
  sim::ScenarioConfig cfg = faulted_scenario(
      "sensor_noise:soc:0.03,probe_stale:p=0.3,pv_derate:factor=0.8", GetParam());
  sim::Cluster cluster{cfg};
  sim::MultiDayOptions opt;
  opt.days = 3;
  opt.probe_every_days = 1;
  opt.sunshine_fraction = 0.5;
  const sim::MultiDayResult r = sim::run_multi_day(cluster, opt);
  EXPECT_EQ(r.days.size(), 3u);
  EXPECT_EQ(r.monthly.size(), 3u);
  EXPECT_NEAR(r.soc_histogram.total_weight(),
              static_cast<double>(cfg.nodes) * 86400.0 * 3.0, 30.0);
  EXPECT_TRUE(std::isfinite(r.total_throughput));
  EXPECT_GE(r.mean_health_end, r.min_health_end);
  for (const auto& mp : r.monthly) {
    EXPECT_TRUE(std::isfinite(mp.capacity_fraction));
    EXPECT_GE(mp.capacity_fraction, 0.0);
    EXPECT_LE(mp.capacity_fraction, 1.2);
  }
  if (r.projected_eol_day.has_value()) {
    EXPECT_TRUE(std::isfinite(*r.projected_eol_day));
    EXPECT_GT(*r.projected_eol_day, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultedMultiDay,
                         ::testing::Range<std::uint64_t>(1u, 9u));

// ---------------------------------------------------------------------------
// Fast-math tier tolerance: --math=fast swaps the aging stressors'
// transcendentals for ~1e-9-relative-error polynomials, and --math=simd
// runs their lane-batched forms through the branchless batched kernel.
// Either perturbation must stay invisible at the metric level — every
// lifetime-relevant output of a multi-day run within 0.1% of the exact
// tier.
// ---------------------------------------------------------------------------

class FastMathTolerance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastMathTolerance, LifetimeMetricsWithinTenthOfAPercent) {
  auto run_tier = [&](battery::MathMode math) {
    sim::ScenarioConfig cfg = sim::prototype_scenario();
    cfg.nodes = 3;
    cfg.seed = GetParam();
    cfg.bank.math = math;
    sim::Cluster cluster{cfg};
    sim::MultiDayOptions opt;
    opt.days = 4;
    opt.sunshine_fraction = 0.5;
    return sim::run_multi_day(cluster, opt);
  };
  const sim::MultiDayResult exact = run_tier(battery::MathMode::Exact);

  auto check_tier = [&](const sim::MultiDayResult& got, const char* tier) {
    auto within = [&](double g, double ref, const char* what) {
      const double tol = 1e-3 * std::max(std::fabs(ref), 1e-9);
      EXPECT_NEAR(g, ref, tol) << tier << " " << what;
    };
    within(got.min_health_end, exact.min_health_end, "min_health_end");
    within(got.mean_health_end, exact.mean_health_end, "mean_health_end");
    within(got.total_throughput, exact.total_throughput, "total_throughput");
    ASSERT_EQ(got.days.size(), exact.days.size());
    for (std::size_t d = 0; d < exact.days.size(); ++d) {
      ASSERT_EQ(got.days[d].nodes.size(), exact.days[d].nodes.size());
      for (std::size_t i = 0; i < exact.days[d].nodes.size(); ++i) {
        within(got.days[d].nodes[i].soc_end, exact.days[d].nodes[i].soc_end,
               "soc_end");
        within(got.days[d].nodes[i].health, exact.days[d].nodes[i].health,
               "health");
      }
    }
  };
  check_tier(run_tier(battery::MathMode::Fast), "fast");
  check_tier(run_tier(battery::MathMode::Simd), "simd");
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastMathTolerance,
                         ::testing::Values(1u, 7u, 42u));

// ---------------------------------------------------------------------------
// Aging-attribution closure over a simulated year: the ledger's
// per-mechanism fade must reconcile with the kernel's own capacity number
// within 1e-9 for every cell after ~365 days of duty — clean fleets,
// stressed fleets (weak/pre-aged/open cells), exact and fast math.
// ---------------------------------------------------------------------------

struct AttributionCase {
  battery::MathMode math;
  bool stressed;  ///< weak cell + pre-aged cell + one open failure
  std::uint64_t seed;
};

class YearLongAttribution : public ::testing::TestWithParam<AttributionCase> {};

TEST_P(YearLongAttribution, LedgerReconcilesWithKernelHealthTo1e9) {
  const AttributionCase ac = GetParam();
  battery::FleetState fleet{battery::LeadAcidParams{}, battery::AgingParams{},
                            battery::ThermalParams{}, ac.math};
  constexpr std::size_t kCells = 4;
  util::Rng rng{ac.seed};
  for (std::size_t i = 0; i < kCells; ++i) {
    const double cap = ac.stressed && i == 1 ? 0.75 : rng.uniform(0.95, 1.05);
    fleet.add_cell(cap, rng.uniform(0.9, 1.1), rng.uniform(0.5, 0.9));
  }
  if (ac.stressed) {
    battery::AgingState pre = fleet.cell_aging_state(2);
    pre.sulphation = 0.04;
    pre.corrosion = 0.02;
    fleet.set_cell_aging_state(2, pre);
    fleet.fail_open_cell(3);
  }

  // 365 days of day-shaped duty at 2-minute ticks (~530k cell-ticks), with
  // monthly delta windows accumulated alongside the running totals.
  const util::Seconds dt{120.0};
  constexpr long kTicksPerDay = 720;
  battery::LedgerRollup window_sum[kCells];
  for (long day = 0; day < 365; ++day) {
    for (long t = 0; t < kTicksPerDay; ++t) {
      const double phase = static_cast<double>(t) / kTicksPerDay;
      for (std::size_t c = 0; c < kCells; ++c) {
        // Morning discharge, midday recharge, evening discharge. The charge
        // phase replaces the full daily draw (a net-negative duty parks the
        // cell at SoC 0 and sulphates it to the capacity floor, where the
        // identity intentionally stops holding). The detune is
        // multiplicative so it scales charge and discharge together.
        double amps = phase < 0.3 ? 2.0 : (phase < 0.6 ? -6.0 : 1.2);
        amps *= 1.0 + 0.05 * static_cast<double>(c);
        amps += rng.uniform(-0.3, 0.3);
        fleet.step_cell(c, util::Amperes{amps}, dt);
      }
    }
    if ((day + 1) % 30 == 0) {
      for (std::size_t c = 0; c < kCells; ++c) {
        window_sum[c].add(fleet.ledger_delta(c));
      }
      fleet.ledger_advance();
    }
  }
  for (std::size_t c = 0; c < kCells; ++c) {
    window_sum[c].add(fleet.ledger_delta(c));  // the final partial window
  }

  for (std::size_t c = 0; c < kCells; ++c) {
    const battery::CellLedgerEntry total = fleet.ledger_total(c);
    // Attribution closure: the mechanism parts reproduce the kernel's own
    // capacity fraction (above the 0.05 floor nothing here approaches).
    // An open-failed cell reports health 0 as a failure flag, not a
    // capacity fraction, so the identity is checked against its aging state
    // directly instead.
    const double capacity = battery::detail::aging_capacity_fraction(
        fleet.aging_params(), fleet.cell_aging_state(c));
    ASSERT_GT(capacity, 0.06);
    EXPECT_NEAR(total.fade.total(), 1.0 - capacity, 1e-9) << "cell " << c;
    if (!(ac.stressed && c == 3)) {
      EXPECT_EQ(capacity, fleet.cell_health(c));
    }
    // Windowed deltas partition the totals.
    EXPECT_NEAR(window_sum[c].fade.total(), total.fade.total(), 1e-9);
    EXPECT_NEAR(window_sum[c].cycle_damage, total.cycle_damage, 1e-9);
    EXPECT_NEAR(window_sum[c].efc, total.efc, 1e-6);
    EXPECT_NEAR(window_sum[c].low_soc_dwell_s, total.low_soc_dwell_s, 1e-6);
    // Sanity on the magnitudes: a year of cycling ages a live cell.
    if (!(ac.stressed && c == 3)) {
      EXPECT_GT(total.fade.total(), 0.0);
      EXPECT_GT(total.efc, 1.0);
    }
    EXPECT_TRUE(std::isfinite(total.cycle_damage));
    EXPECT_GE(total.cycle_damage, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TiersAndFleets, YearLongAttribution,
    ::testing::Values(AttributionCase{battery::MathMode::Exact, false, 11u},
                      AttributionCase{battery::MathMode::Fast, false, 11u},
                      AttributionCase{battery::MathMode::Simd, false, 11u},
                      AttributionCase{battery::MathMode::Exact, true, 23u},
                      AttributionCase{battery::MathMode::Fast, true, 23u},
                      AttributionCase{battery::MathMode::Simd, true, 23u}));

// A faulted cluster run must keep the same closure at node level: the
// cluster's ledger view reconciles with each battery's health.
TEST(FaultedAttribution, NodeLedgerReconcilesUnderFaults) {
  const sim::ScenarioConfig cfg = faulted_scenario(
      "sensor_noise:soc:0.05,cell_weak:bank=0:capacity=0.8,pv_derate:factor=0.7", 9u);
  sim::Cluster cluster{cfg};
  for (int d = 0; d < 5; ++d) {
    cluster.run_day(d % 2 == 0 ? solar::DayType::Sunny : solar::DayType::Rainy);
  }
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const battery::CellLedgerEntry t = cluster.node_ledger_total(i);
    EXPECT_NEAR(t.fade.total(), 1.0 - cluster.batteries()[i].health(), 1e-9)
        << "node " << i;
    EXPECT_GE(t.low_soc_dwell_s, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Sharded datacenter invariants: for ANY seed, shard count and worker count
// the merged day result is bit-identical and additive over shards.
// ---------------------------------------------------------------------------

class DatacenterFuzz : public ::testing::TestWithParam<std::uint64_t> {};

std::string day_result_bytes(const sim::DayResult& r) {
  snapshot::SnapshotWriter w;
  save_state(w, r);
  return {w.bytes().begin(), w.bytes().end()};
}

long draw_int(util::Rng& rng, long lo, long hi) {  // uniform in [lo, hi]
  return lo + static_cast<long>(rng.uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
}

TEST_P(DatacenterFuzz, WorkerCountNeverChangesTheMergedDay) {
  util::Rng rng{GetParam()};
  sim::DatacenterConfig cfg;
  cfg.scenario = faulted_scenario(
      kFaultClasses[draw_int(rng, 0, static_cast<long>(std::size(kFaultClasses)) - 1)],
      GetParam());
  cfg.shards = static_cast<std::size_t>(draw_int(rng, 1, 5));
  cfg.demand = workload::parse_demand_spec(
      "users=" + std::to_string(draw_int(rng, 1, 8) * 500000) +
      ",requests=150,peak=" + std::to_string(draw_int(rng, 0, 23)) +
      ",amplitude=0.5,spread=" + std::to_string(draw_int(rng, 0, 12)));
  auto run_once = [&](std::size_t workers) {
    util::set_sim_time(0.0);
    cfg.workers = workers;
    sim::Datacenter dc{cfg};
    std::string bytes;
    for (int d = 0; d < 2; ++d) {
      bytes += day_result_bytes(dc.run_day(solar::DayType::Cloudy));
    }
    util::set_sim_time(-1.0);
    return bytes;
  };
  const std::string serial = run_once(1);
  EXPECT_EQ(serial, run_once(4));
  EXPECT_EQ(serial, run_once(7));
}

TEST_P(DatacenterFuzz, MergedNodesConcatenateInShardIndexOrder) {
  // Shard i's trajectory is keyed on i alone, never the shard count, so a
  // 2-shard and a 4-shard datacenter agree on shards 0 and 1 — and the
  // merged result must lay node stats out in shard-index order.
  auto run = [&](std::size_t shards) {
    sim::DatacenterConfig cfg;
    cfg.scenario = faulted_scenario("", GetParam());
    cfg.shards = shards;
    cfg.workers = 1;
    util::set_sim_time(0.0);
    sim::Datacenter dc{cfg};
    const sim::DayResult r = dc.run_day(solar::DayType::Sunny);
    util::set_sim_time(-1.0);
    return r;
  };
  const sim::DayResult two = run(2);
  const sim::DayResult four = run(4);
  const std::size_t per_shard = two.nodes.size() / 2;
  ASSERT_EQ(four.nodes.size(), per_shard * 4);
  for (std::size_t n = 0; n < 2 * per_shard; ++n) {
    EXPECT_EQ(two.nodes[n].soc_end, four.nodes[n].soc_end);
    EXPECT_EQ(two.nodes[n].health, four.nodes[n].health);
    EXPECT_EQ(two.nodes[n].ah_discharged.value(), four.nodes[n].ah_discharged.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatacenterFuzz, ::testing::Values(11u, 12u, 13u, 14u));

// ---------------------------------------------------------------------------
// Demand model properties over randomized specs.
// ---------------------------------------------------------------------------

class DemandFuzz : public ::testing::TestWithParam<std::uint64_t> {};

workload::DemandModel random_demand(util::Rng& rng) {
  workload::DemandModel m;
  m.users = static_cast<std::uint64_t>(draw_int(rng, 1, 2000)) * 10000u;
  m.requests_per_user = rng.uniform(1.0, 500.0);
  m.peak_hour = rng.uniform(0.0, 24.0 - 1e-9);
  m.amplitude = rng.uniform(0.0, 1.0);
  m.region_spread_hours = rng.uniform(0.0, 24.0 - 1e-9);
  m.max_jobs = static_cast<std::size_t>(draw_int(rng, 1, 256));
  if (rng.bernoulli(0.5)) {
    m.flashes.push_back({draw_int(rng, 0, 10), rng.uniform(1.0, 8.0),
                         rng.uniform(0.0, 24.0 - 1e-9), rng.uniform(0.25, 6.0)});
  }
  return m;
}

TEST_P(DemandFuzz, CanonicalFormIsAParseFixedPoint) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 20; ++i) {
    const workload::DemandModel m = random_demand(rng);
    const workload::DemandModel reparsed = workload::parse_demand_spec(m.to_string());
    EXPECT_EQ(reparsed.to_string(), m.to_string());
  }
}

TEST_P(DemandFuzz, IntensityAveragesToOneBeforeFlashes) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 10; ++i) {
    workload::DemandModel m = random_demand(rng);
    m.flashes.clear();
    const std::size_t shards = static_cast<std::size_t>(draw_int(rng, 1, 8));
    const std::size_t shard =
        static_cast<std::size_t>(draw_int(rng, 0, static_cast<long>(shards) - 1));
    double sum = 0.0;
    const int kSamples = 2400;
    for (int k = 0; k < kSamples; ++k) {
      const double hour = (k + 0.5) * 24.0 / kSamples;
      const double v = m.intensity(shard, shards, 3, hour);
      ASSERT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum / kSamples, 1.0, 1e-6);
  }
}

TEST_P(DemandFuzz, SchedulesAreSortedBoundedAndPure) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 10; ++i) {
    const workload::DemandModel m = random_demand(rng);
    const std::size_t shards = static_cast<std::size_t>(draw_int(rng, 1, 6));
    for (std::size_t s = 0; s < shards; ++s) {
      const long day = draw_int(rng, 0, 12);
      const std::vector<workload::DemandJob> jobs = m.shard_day_jobs(s, shards, day);
      EXPECT_LE(jobs.size(), m.max_jobs);
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        ASSERT_GE(jobs[j].start_frac, 0.0);
        ASSERT_LT(jobs[j].start_frac, 1.0);
        if (j > 0) ASSERT_GE(jobs[j].start_frac, jobs[j - 1].start_frac);
      }
      const std::vector<workload::DemandJob> again = m.shard_day_jobs(s, shards, day);
      ASSERT_EQ(again.size(), jobs.size());
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        EXPECT_EQ(again[j].start_frac, jobs[j].start_frac);
        EXPECT_EQ(again[j].kind, jobs[j].kind);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DemandFuzz, ::testing::Values(21u, 22u, 23u));

}  // namespace
}  // namespace baat
