// Property-based sweeps across randomized scenarios: physical invariants
// that must hold for ANY seed, policy, weather, or duty pattern. These are
// the guardrails that catch bookkeeping bugs the targeted unit tests miss.

#include <gtest/gtest.h>

#include <numeric>

#include "battery/battery.hpp"
#include "power/router.hpp"
#include "sim/experiment.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"

namespace baat {
namespace {

// ---------------------------------------------------------------------------
// Battery invariants under random duty.
// ---------------------------------------------------------------------------

class BatteryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatteryFuzz, InvariantsUnderRandomDuty) {
  util::Rng rng{GetParam()};
  battery::Battery bat{battery::LeadAcidParams{}, battery::AgingParams{},
                       battery::ThermalParams{}, rng.uniform(0.9, 1.1),
                       rng.uniform(0.8, 1.2), rng.uniform(0.2, 1.0)};
  double prev_health = bat.health();
  double prev_ah_out = 0.0;
  double prev_time = 0.0;
  for (int step = 0; step < 2000; ++step) {
    const double amps = rng.uniform(-20.0, 30.0);
    const auto res = bat.step(util::amperes(amps), util::minutes(1.0));

    // SoC bounded; health never recovers; counters monotone.
    ASSERT_GE(bat.soc(), 0.0);
    ASSERT_LE(bat.soc(), 1.0);
    ASSERT_LE(bat.health(), prev_health + 1e-12);
    ASSERT_GE(bat.counters().ah_discharged.value(), prev_ah_out);
    ASSERT_GT(bat.counters().time_total.value(), prev_time);
    // Actual current never exceeds the request in magnitude.
    if (amps >= 0.0) {
      ASSERT_LE(res.actual_current.value(), amps + 1e-9);
      ASSERT_GE(res.actual_current.value(), -1e-9);
    } else {
      ASSERT_GE(res.actual_current.value(), amps - 1e-9);
      ASSERT_LE(res.actual_current.value(), 1e-9);
    }
    // Terminal voltage stays physical.
    ASSERT_GT(res.terminal_voltage.value(), 5.0);
    ASSERT_LT(res.terminal_voltage.value(), 16.0);

    prev_health = bat.health();
    prev_ah_out = bat.counters().ah_discharged.value();
    prev_time = bat.counters().time_total.value();
  }
  // Range bins always partition the discharge total.
  const auto& c = bat.counters();
  const double bins = c.ah_by_range[0].value() + c.ah_by_range[1].value() +
                      c.ah_by_range[2].value() + c.ah_by_range[3].value();
  EXPECT_NEAR(bins, c.ah_discharged.value(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatteryFuzz,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// ---------------------------------------------------------------------------
// Router conservation across random fleets.
// ---------------------------------------------------------------------------

class RouterFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterFuzz, ConservationAndBalance) {
  util::Rng rng{GetParam()};
  const std::size_t n = 2 + rng.uniform_index(6);
  std::vector<battery::Battery> bats;
  std::vector<util::Watts> demands;
  for (std::size_t i = 0; i < n; ++i) {
    bats.emplace_back(battery::LeadAcidParams{}, battery::AgingParams{},
                      battery::ThermalParams{}, 1.0, 1.0, rng.uniform(0.0, 1.0));
    demands.push_back(util::watts(rng.uniform(0.0, 200.0)));
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (int tick = 0; tick < 200; ++tick) {
    const auto solar = util::watts(rng.uniform(0.0, 1200.0));
    const auto r = power::route_power(solar, demands, bats, order,
                                      power::RouterParams{}, util::minutes(1.0));
    double solar_used = 0.0;
    for (const auto& node : r.nodes) {
      // Per-node balance: demand fully attributed.
      ASSERT_NEAR(node.demand.value(),
                  node.solar_used.value() + node.utility_used.value() +
                      node.battery_delivered.value() + node.unmet.value(),
                  1e-6);
      ASSERT_GE(node.unmet.value(), -1e-9);
      solar_used += node.solar_used.value() + node.charge_drawn.value();
    }
    // Solar fully attributed: used + stored + curtailed.
    ASSERT_NEAR(solar_used + r.solar_curtailed.value(), solar.value(), 1e-6);
    ASSERT_GE(r.solar_curtailed.value(), -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterFuzz,
                         ::testing::Values(3u, 17u, 256u, 4096u));

// ---------------------------------------------------------------------------
// Metric invariants on random power tables.
// ---------------------------------------------------------------------------

class MetricsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricsFuzz, RangesAlwaysHold) {
  util::Rng rng{GetParam()};
  battery::Battery bat{battery::LeadAcidParams{}, battery::AgingParams{},
                       battery::ThermalParams{}, 1.0, 1.0, rng.uniform(0.1, 1.0)};
  telemetry::PowerTableParams params;
  params.chemistry = battery::LeadAcidParams{};
  telemetry::PowerTable table{params};
  telemetry::BatterySensor sensor{telemetry::SensorNoise{}, rng.fork("sensor")};

  for (int step = 0; step < 1500; ++step) {
    const auto res = bat.step(util::amperes(rng.uniform(-15.0, 25.0)),
                              util::minutes(1.0));
    table.record(sensor.read(bat, res.actual_current,
                             util::Seconds{step * 60.0}),
                 util::minutes(1.0));
    const auto m = telemetry::compute_metrics(table, telemetry::MetricParams{});
    ASSERT_GE(m.nat, 0.0);
    ASSERT_GE(m.cf, 0.0);
    ASSERT_LE(m.cf, 5.0);
    ASSERT_GE(m.pc, 0.25 - 1e-9);
    ASSERT_LE(m.pc, 1.0 + 1e-9);
    ASSERT_GE(m.pc_health, 0.0);
    ASSERT_LE(m.pc_health, 1.0);
    ASSERT_GE(m.ddt, 0.0);
    ASSERT_LE(m.ddt, 1.0);
    ASSERT_GE(m.dr_c_rate, -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsFuzz, ::testing::Values(11u, 22u, 33u));

// ---------------------------------------------------------------------------
// Whole-cluster invariants across policies and weather.
// ---------------------------------------------------------------------------

struct ClusterCase {
  core::PolicyKind policy;
  solar::DayType weather;
  std::uint64_t seed;
};

class ClusterSweep : public ::testing::TestWithParam<ClusterCase> {};

TEST_P(ClusterSweep, DayLevelInvariants) {
  const ClusterCase c = GetParam();
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.policy = c.policy;
  cfg.seed = c.seed;
  if (c.policy == core::PolicyKind::BaatPlanned) {
    cfg.policy_params.planned.cycles_plan = 800.0;
  }
  sim::Cluster cluster{cfg};
  const sim::DayResult r = cluster.run_day(c.weather);

  // Energy attribution.
  EXPECT_NEAR(r.meter.solar_available().value(),
              r.meter.solar_to_load().value() + r.meter.solar_to_charge().value() +
                  r.meter.solar_curtailed().value(),
              1.0);
  // Work and counters sane.
  EXPECT_GE(r.throughput_work, 0.0);
  EXPECT_GE(r.jobs_finished, 0);
  EXPECT_NEAR(r.soc_histogram.total_weight(),
              static_cast<double>(cfg.nodes) * 86400.0, 10.0);
  for (const auto& n : r.nodes) {
    EXPECT_GE(n.soc_min, 0.0);
    EXPECT_LE(n.soc_end, 1.0);
    EXPECT_LE(n.critical_soc_time.value(), n.low_soc_time.value() + 1e-9);
    EXPECT_LE(n.health, 1.0);
    EXPECT_GT(n.health, 0.5);
  }
  // Batteries never escape bounds.
  for (const auto& b : cluster.batteries()) {
    EXPECT_GE(b.soc(), 0.0);
    EXPECT_LE(b.soc(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyWeather, ClusterSweep,
    ::testing::Values(
        ClusterCase{core::PolicyKind::EBuff, solar::DayType::Sunny, 1},
        ClusterCase{core::PolicyKind::EBuff, solar::DayType::Rainy, 2},
        ClusterCase{core::PolicyKind::BaatS, solar::DayType::Cloudy, 3},
        ClusterCase{core::PolicyKind::BaatH, solar::DayType::Cloudy, 4},
        ClusterCase{core::PolicyKind::Baat, solar::DayType::Rainy, 5},
        ClusterCase{core::PolicyKind::Baat, solar::DayType::Sunny, 6},
        ClusterCase{core::PolicyKind::BaatPlanned, solar::DayType::Cloudy, 7},
        ClusterCase{core::PolicyKind::BaatPredictive, solar::DayType::Rainy, 8},
        ClusterCase{core::PolicyKind::BaatPredictive, solar::DayType::Cloudy, 9}));

}  // namespace
}  // namespace baat
