#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/require.hpp"

namespace baat::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "baat_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w{path_, {"a", "b"}};
    w.write_row({"1", "2"});
    w.write_row({CsvWriter::cell(3.5), "x"});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2\n3.5,x\n");
}

TEST_F(CsvTest, RejectsWidthMismatch) {
  CsvWriter w{path_, {"a", "b"}};
  EXPECT_THROW(w.write_row({"only-one"}), PreconditionError);
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter w{path_, {"v"}};
    w.write_row({"has,comma"});
    w.write_row({"has\"quote"});
  }
  EXPECT_EQ(read_file(path_), "v\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST_F(CsvTest, DoubleCellRoundTrips) {
  const double v = 0.1234567890123456789;
  const std::string cell = CsvWriter::cell(v);
  EXPECT_DOUBLE_EQ(std::stod(cell), v);
}

TEST_F(CsvTest, RejectsEmptyHeader) {
  EXPECT_THROW(CsvWriter(path_, {}), PreconditionError);
}

TEST_F(CsvTest, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

}  // namespace
}  // namespace baat::util
