#include <gtest/gtest.h>

#include "core/policies.hpp"
#include "core/policy.hpp"
#include "util/require.hpp"

namespace baat::core {
namespace {

NodeView node(std::size_t idx, double soc, double nat = 0.0, double cf = 1.1,
              double pc = 0.25) {
  NodeView n;
  n.index = idx;
  n.powered_on = true;
  n.soc = soc;
  n.metrics.cf = cf;
  n.metrics.pc = pc;
  n.metrics.nat = nat;
  n.metrics_life = n.metrics;
  n.cores_free = 8.0;
  n.mem_free_gb = 16.0;
  n.dvfs_level = 3;
  n.dvfs_top = 3;
  n.sustainable_reserve_power = util::watts(400.0);
  n.battery_draw = util::watts(50.0);
  return n;
}

VmView vm(workload::VmId id, double cores = 2.0) {
  VmView v;
  v.id = id;
  v.kind = workload::Kind::WordCount;
  v.cores = cores;
  v.mem_gb = 4.0;
  v.migratable = true;
  return v;
}

PolicyContext ctx_with(std::vector<NodeView> nodes, double now_s = 10000.0) {
  PolicyContext ctx;
  ctx.now = util::Seconds{now_s};
  ctx.nodes = std::move(nodes);
  return ctx;
}

DemandProfile any_demand() {
  DemandProfile d;
  d.power_fraction_of_peak = 0.6;
  d.energy_request = util::watt_hours(300.0);
  return d;
}

TEST(PolicyFactory, BuildsEveryKind) {
  PolicyParams p;
  EXPECT_EQ(make_policy(PolicyKind::EBuff, p)->name(), "e-Buff");
  EXPECT_EQ(make_policy(PolicyKind::BaatS, p)->name(), "BAAT-s");
  EXPECT_EQ(make_policy(PolicyKind::BaatH, p)->name(), "BAAT-h");
  EXPECT_EQ(make_policy(PolicyKind::Baat, p)->name(), "BAAT");
  p.planned.cycles_plan = 500.0;
  p.planned.total_throughput = util::ampere_hours(35000.0);
  EXPECT_EQ(make_policy(PolicyKind::BaatPlanned, p)->name(), "BAAT-planned");
}

TEST(PolicyFactory, PlannedRequiresPlan) {
  PolicyParams p;  // cycles_plan = 0
  EXPECT_THROW(make_policy(PolicyKind::BaatPlanned, p), util::PreconditionError);
}

TEST(PolicyFactory, KindNames) {
  EXPECT_EQ(policy_kind_name(PolicyKind::EBuff), "e-Buff");
  EXPECT_EQ(policy_kind_name(PolicyKind::BaatPlanned), "BAAT-planned");
  EXPECT_EQ(policy_kind_name(PolicyKind::BaatPredictive), "BAAT-p");
}

TEST(PolicyFactory, BuildsPredictive) {
  const auto policy = make_policy(PolicyKind::BaatPredictive, PolicyParams{});
  EXPECT_EQ(policy->name(), "BAAT-p");
  EXPECT_EQ(policy->kind(), PolicyKind::BaatPredictive);
}

TEST(BaatP, PreemptiveCapOnForecastShortfall) {
  PolicyParams params;
  params.day_end = util::hours(18.5);
  BaatPredictivePolicy policy{params};

  // Mid-afternoon, heavy fleet demand, half-full batteries, and a dark sky
  // reading: the budget cannot close, so every node gets capped even though
  // nobody is below the reactive knee yet.
  PolicyContext ctx = ctx_with({node(0, 0.55), node(1, 0.55), node(2, 0.55)});
  ctx.time_of_day = util::hours(15.0);
  ctx.solar_now = util::watts(0.0);
  for (auto& n : ctx.nodes) n.server_power = util::watts(140.0);
  const Actions a = policy.on_control_tick(ctx);
  EXPECT_EQ(a.dvfs.size(), 3u);
  for (const auto& d : a.dvfs) EXPECT_EQ(d.level, 2);
}

TEST(BaatP, NoCapWhenBudgetCloses) {
  PolicyParams params;
  BaatPredictivePolicy policy{params};
  // Morning, light demand, full batteries, bright sky: no preemption.
  PolicyContext ctx = ctx_with({node(0, 0.95), node(1, 0.95)});
  ctx.time_of_day = util::hours(10.0);
  ctx.solar_now = util::watts(900.0);
  for (auto& n : ctx.nodes) n.server_power = util::watts(80.0);
  const Actions a = policy.on_control_tick(ctx);
  EXPECT_TRUE(a.dvfs.empty());
}

TEST(BaatP, NothingAfterDayEnd) {
  PolicyParams params;
  BaatPredictivePolicy policy{params};
  PolicyContext ctx = ctx_with({node(0, 0.5)});
  ctx.time_of_day = util::hours(20.0);  // past the duty window
  ctx.solar_now = util::watts(0.0);
  ctx.nodes[0].server_power = util::watts(140.0);
  EXPECT_TRUE(policy.on_control_tick(ctx).dvfs.empty());
}

TEST(EBuff, NeverThrottlesAndRestoresDvfs) {
  EBuffPolicy policy{PolicyParams{}};
  auto nodes = std::vector<NodeView>{node(0, 0.1), node(1, 0.9)};
  nodes[0].dvfs_level = 1;  // someone left it throttled
  nodes[0].metrics.ddt = 0.9;
  const Actions a = policy.on_control_tick(ctx_with(std::move(nodes)));
  EXPECT_TRUE(a.migrations.empty());
  ASSERT_EQ(a.dvfs.size(), 1u);
  EXPECT_EQ(a.dvfs[0].node, 0u);
  EXPECT_EQ(a.dvfs[0].level, 3);  // back to top
}

TEST(EBuff, PlacesLeastLoaded) {
  EBuffPolicy policy{PolicyParams{}};
  auto n0 = node(0, 0.9);
  n0.cores_free = 2.0;
  auto n1 = node(1, 0.9);
  n1.cores_free = 6.0;
  const auto pick =
      policy.place_vm(ctx_with({n0, n1}), 2.0, 4.0, any_demand());
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);
}

TEST(BaatS, ThrottlesStressedNodeOneStep) {
  BaatSPolicy policy{PolicyParams{}};
  auto stressed = node(0, 0.30);
  stressed.metrics.ddt = 0.5;
  stressed.vms = {vm(1)};
  const Actions a = policy.on_control_tick(ctx_with({stressed, node(1, 0.9)}));
  EXPECT_TRUE(a.migrations.empty());  // BAAT-s never migrates
  ASSERT_EQ(a.dvfs.size(), 1u);
  EXPECT_EQ(a.dvfs[0].node, 0u);
  EXPECT_EQ(a.dvfs[0].level, 2);
}

TEST(BaatS, RestoresWhenRecovered) {
  BaatSPolicy policy{PolicyParams{}};
  auto recovered = node(0, 0.80);
  recovered.dvfs_level = 1;
  const Actions a = policy.on_control_tick(ctx_with({recovered}));
  ASSERT_EQ(a.dvfs.size(), 1u);
  EXPECT_EQ(a.dvfs[0].level, 2);  // one step up per tick
}

TEST(BaatH, MigratesOffFastestAgingNode) {
  PolicyParams params;
  BaatHPolicy policy{params};
  // Node 0 is clearly the fastest-aging (high NAT, starved CF, deep PC).
  auto worn = node(0, 0.9, /*nat=*/0.4, /*cf=*/0.5, /*pc=*/0.9);
  worn.vms = {vm(7)};
  const Actions a =
      policy.on_control_tick(ctx_with({worn, node(1, 0.9), node(2, 0.9)}));
  ASSERT_EQ(a.migrations.size(), 1u);
  EXPECT_EQ(a.migrations[0].vm, 7);
  EXPECT_EQ(a.migrations[0].from, 0u);
  EXPECT_NE(a.migrations[0].to, 0u);
  EXPECT_TRUE(a.dvfs.empty());  // BAAT-h never throttles
}

TEST(BaatH, MovesSmallestVmBlindly) {
  BaatHPolicy policy{PolicyParams{}};
  auto worn = node(0, 0.9, 0.4, 0.5, 0.9);
  worn.vms = {vm(7, /*cores=*/5.0), vm(8, /*cores=*/2.0)};
  const Actions a = policy.on_control_tick(ctx_with({worn, node(1, 0.9)}));
  ASSERT_EQ(a.migrations.size(), 1u);
  EXPECT_EQ(a.migrations[0].vm, 8);  // cautious: smallest footprint
}

TEST(BaatH, CooldownLimitsChurn) {
  BaatHPolicy policy{PolicyParams{}};
  auto worn = node(0, 0.9, 0.4, 0.5, 0.9);
  worn.vms = {vm(7)};
  const auto ctx1 = ctx_with({worn, node(1, 0.9)}, 10000.0);
  EXPECT_EQ(policy.on_control_tick(ctx1).migrations.size(), 1u);
  const auto ctx2 = ctx_with({worn, node(1, 0.9)}, 10300.0);  // 5 min later
  EXPECT_TRUE(policy.on_control_tick(ctx2).migrations.empty());
}

TEST(BaatH, NoTargetNoMigration) {
  BaatHPolicy policy{PolicyParams{}};
  auto worn = node(0, 0.9, 0.4, 0.5, 0.9);
  worn.vms = {vm(7)};
  auto other = node(1, 0.30);  // deep SoC: filtered as a target
  const Actions a = policy.on_control_tick(ctx_with({worn, other}));
  EXPECT_TRUE(a.migrations.empty());
}

TEST(BaatH, BalancedFleetStaysPut) {
  BaatHPolicy policy{PolicyParams{}};
  auto a = node(0, 0.9);
  a.vms = {vm(7)};
  auto b = node(1, 0.9);
  b.vms = {vm(8)};
  EXPECT_TRUE(policy.on_control_tick(ctx_with({a, b})).migrations.empty());
}

TEST(Baat, PrefersMigrationOverDvfs) {
  BaatPolicy policy{PolicyParams{}, false};
  auto stressed = node(0, 0.30);
  stressed.metrics.ddt = 0.5;
  stressed.vms = {vm(7)};
  auto healthy = node(1, 0.9);
  auto healthier = node(2, 0.9, 0.0, 1.1, 0.25);
  healthy.metrics_life.nat = 0.2;  // make node 2 the better target
  const Actions a = policy.on_control_tick(ctx_with({stressed, healthy, healthier}));
  ASSERT_EQ(a.migrations.size(), 1u);
  EXPECT_EQ(a.migrations[0].to, 2u);
  EXPECT_TRUE(a.dvfs.empty());
}

TEST(Baat, FallsBackToDvfsWithoutTarget) {
  BaatPolicy policy{PolicyParams{}, false};
  auto stressed = node(0, 0.30);
  stressed.metrics.ddt = 0.5;
  stressed.vms = {vm(7)};
  auto deep = node(1, 0.30);  // no SoC headroom
  const Actions a = policy.on_control_tick(ctx_with({stressed, deep}));
  EXPECT_TRUE(a.migrations.empty());
  bool throttled_node0 = false;
  for (const auto& d : a.dvfs) throttled_node0 |= d.node == 0 && d.level == 2;
  EXPECT_TRUE(throttled_node0);
}

TEST(Baat, ChargePriorityWorstFirst) {
  BaatPolicy policy{PolicyParams{}, false};
  auto worst = node(0, 0.9, 0.4, 0.5, 0.9);
  auto best = node(1, 0.9);
  const Actions a = policy.on_control_tick(ctx_with({worst, best}));
  ASSERT_EQ(a.charge_priority.size(), 2u);
  EXPECT_EQ(a.charge_priority[0], 0u);
  EXPECT_EQ(a.charge_priority[1], 1u);
}

TEST(Baat, RebalancesWideAgingSpread) {
  PolicyParams params;
  params.rebalance_threshold = 0.05;
  BaatPolicy policy{params, false};
  auto worst = node(0, 0.9, 0.5, 0.4, 0.9);
  worst.vms = {vm(3)};
  auto best = node(1, 0.9);
  const Actions a = policy.on_control_tick(ctx_with({worst, best}));
  ASSERT_EQ(a.migrations.size(), 1u);
  EXPECT_EQ(a.migrations[0].from, 0u);
  EXPECT_EQ(a.migrations[0].to, 1u);
}

TEST(Baat, PlannedTriggerFollowsEq7) {
  PolicyParams params;
  params.planned.total_throughput = util::ampere_hours(35000.0);
  params.planned.nameplate = util::ampere_hours(35.0);
  params.planned.cycles_plan = 2000.0;  // → DoD 50% on a fresh unit
  BaatPolicy policy{params, true};
  const NodeView fresh_node = node(0, 0.9);
  EXPECT_NEAR(policy.effective_soc_trigger(fresh_node), 0.5, 1e-9);
  // A node with half its life spent plans a shallower DoD.
  NodeView worn = node(1, 0.9, /*nat=*/0.5);
  EXPECT_NEAR(policy.effective_soc_trigger(worn), 0.75, 1e-9);
}

TEST(Baat, UnplannedUsesDefaultTrigger) {
  BaatPolicy policy{PolicyParams{}, false};
  EXPECT_DOUBLE_EQ(policy.effective_soc_trigger(node(0, 0.9)),
                   SlowdownParams{}.soc_trigger);
}

TEST(PlaceLeastLoaded, SkipsFullAndOffNodes) {
  auto full = node(0, 0.9);
  full.cores_free = 1.0;
  auto off = node(1, 0.9);
  off.powered_on = false;
  auto ok = node(2, 0.9);
  ok.cores_free = 4.0;
  const auto pick = place_least_loaded(ctx_with({full, off, ok}), 2.0, 4.0);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);
  EXPECT_FALSE(place_least_loaded(ctx_with({full, off}), 2.0, 4.0).has_value());
}

}  // namespace
}  // namespace baat::core
