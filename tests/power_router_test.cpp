#include <gtest/gtest.h>

#include <numeric>

#include "power/meter.hpp"
#include "power/router.hpp"
#include "util/require.hpp"

namespace baat::power {
namespace {

using util::amperes;
using util::minutes;
using util::volts;
using util::watts;

std::vector<battery::Battery> make_batteries(std::size_t n, double soc) {
  std::vector<battery::Battery> v;
  for (std::size_t i = 0; i < n; ++i) {
    v.emplace_back(battery::LeadAcidParams{}, battery::AgingParams{},
                   battery::ThermalParams{}, 1.0, 1.0, soc);
  }
  return v;
}

std::vector<std::size_t> natural_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

TEST(CurrentForDcPower, SolvesQuadratic) {
  // I·(12 − 0.015·I) = 60 → I ≈ 5.03 A.
  const auto i = current_for_dc_power(watts(60.0), volts(12.0), 0.015);
  EXPECT_NEAR(i.value() * (12.0 - 0.015 * i.value()), 60.0, 1e-9);
  EXPECT_DOUBLE_EQ(current_for_dc_power(watts(0.0), volts(12.0), 0.015).value(), 0.0);
}

TEST(CurrentForDcPower, CapsAtMaximumPowerPoint) {
  // Max deliverable power is v²/4r; beyond it, current caps at v/2r.
  const auto i = current_for_dc_power(watts(1e6), volts(12.0), 0.015);
  EXPECT_DOUBLE_EQ(i.value(), 12.0 / (2.0 * 0.015));
}

TEST(Router, SolarCoversDemandDirectly) {
  auto bats = make_batteries(2, 0.5);
  const std::vector<util::Watts> demands{watts(100.0), watts(50.0)};
  const auto order = natural_order(2);
  const auto r = route_power(watts(500.0), demands, bats, order, RouterParams{},
                             minutes(1.0));
  EXPECT_DOUBLE_EQ(r.nodes[0].solar_used.value(), 100.0);
  EXPECT_DOUBLE_EQ(r.nodes[1].solar_used.value(), 50.0);
  EXPECT_DOUBLE_EQ(r.nodes[0].unmet.value(), 0.0);
  EXPECT_DOUBLE_EQ(r.nodes[0].battery_delivered.value(), 0.0);
  // Surplus charges the half-full batteries.
  EXPECT_GT(r.nodes[0].charge_drawn.value() + r.nodes[1].charge_drawn.value(), 0.0);
}

TEST(Router, ProportionalSolarSplitUnderShortage) {
  auto bats = make_batteries(2, 0.0);  // empty: no battery assist
  const std::vector<util::Watts> demands{watts(300.0), watts(100.0)};
  const auto order = natural_order(2);
  const auto r = route_power(watts(200.0), demands, bats, order, RouterParams{},
                             minutes(1.0));
  EXPECT_NEAR(r.nodes[0].solar_used.value(), 150.0, 1e-9);
  EXPECT_NEAR(r.nodes[1].solar_used.value(), 50.0, 1e-9);
  EXPECT_NEAR(r.nodes[0].unmet.value(), 150.0, 1e-9);
  EXPECT_NEAR(r.nodes[1].unmet.value(), 50.0, 1e-9);
}

TEST(Router, BatteryCoversDeficit) {
  auto bats = make_batteries(1, 0.9);
  const std::vector<util::Watts> demands{watts(120.0)};
  const auto order = natural_order(1);
  const auto r = route_power(watts(0.0), demands, bats, order, RouterParams{},
                             minutes(1.0));
  EXPECT_NEAR(r.nodes[0].battery_delivered.value(), 120.0, 0.5);
  EXPECT_NEAR(r.nodes[0].unmet.value(), 0.0, 0.5);
  EXPECT_GT(r.nodes[0].battery_current.value(), 0.0);
  EXPECT_LT(bats[0].soc(), 0.9);
}

TEST(Router, InverterLossDrawsExtraFromBattery) {
  auto bats = make_batteries(1, 0.9);
  const std::vector<util::Watts> demands{watts(100.0)};
  const auto order = natural_order(1);
  RouterParams params;
  params.inverter_efficiency = 0.80;
  const auto r = route_power(watts(0.0), demands, bats, order, params, minutes(1.0));
  const double dc = r.nodes[0].battery_current.value() *
                    bats[0].terminal_voltage(r.nodes[0].battery_current).value();
  EXPECT_NEAR(dc * 0.80, r.nodes[0].battery_delivered.value(), 1.0);
}

TEST(Router, EmptyBatteryYieldsUnmet) {
  auto bats = make_batteries(1, 0.0);
  const std::vector<util::Watts> demands{watts(100.0)};
  const auto order = natural_order(1);
  const auto r = route_power(watts(0.0), demands, bats, order, RouterParams{},
                             minutes(1.0));
  EXPECT_NEAR(r.nodes[0].unmet.value(), 100.0, 1e-6);
  EXPECT_TRUE(r.nodes[0].battery_cutoff);
}

TEST(Router, UtilityBudgetCoversDeficitFirst) {
  auto bats = make_batteries(1, 0.9);
  const std::vector<util::Watts> demands{watts(100.0)};
  const auto order = natural_order(1);
  RouterParams params;
  params.utility_budget = watts(1000.0);
  const auto r = route_power(watts(0.0), demands, bats, order, params, minutes(1.0));
  EXPECT_DOUBLE_EQ(r.nodes[0].utility_used.value(), 100.0);
  EXPECT_DOUBLE_EQ(r.nodes[0].battery_delivered.value(), 0.0);
  EXPECT_DOUBLE_EQ(r.utility_drawn.value(), 100.0);
}

TEST(Router, ChargePriorityOrderRespected) {
  auto bats = make_batteries(2, 0.5);
  const std::vector<util::Watts> demands{watts(0.0), watts(0.0)};
  // Strict priority mode with node 1 first: with a small surplus node 1
  // soaks up (nearly) all of it; only the residual its charger could not
  // absorb trickles down to node 0.
  const std::vector<std::size_t> order{1, 0};
  RouterParams params;
  params.charge_allocation = ChargeAllocation::PriorityOrder;
  const auto r = route_power(watts(30.0), demands, bats, order, params, minutes(1.0));
  EXPECT_GT(r.nodes[1].charge_drawn.value(), 25.0);
  EXPECT_LT(r.nodes[0].charge_drawn.value(), 2.0);
}

TEST(Router, ProportionalChargingSharesTheBus) {
  auto bats = make_batteries(2, 0.5);
  const std::vector<util::Watts> demands{watts(0.0), watts(0.0)};
  const std::vector<std::size_t> order{0, 1};
  // Default mode: identical batteries split a small surplus about evenly.
  const auto r = route_power(watts(30.0), demands, bats, order, RouterParams{},
                             minutes(1.0));
  EXPECT_GT(r.nodes[0].charge_drawn.value(), 5.0);
  EXPECT_GT(r.nodes[1].charge_drawn.value(), 5.0);
  EXPECT_NEAR(r.nodes[0].charge_drawn.value(), r.nodes[1].charge_drawn.value(), 2.0);
}

TEST(Router, DischargeFloorBlocksDeepDischarge) {
  auto bats = make_batteries(1, 0.35);
  const std::vector<util::Watts> demands{watts(100.0)};
  const auto order = natural_order(1);
  const std::vector<double> floor{0.35};
  const auto r = route_power(watts(0.0), demands, bats, order, RouterParams{},
                             minutes(1.0), floor);
  EXPECT_NEAR(r.nodes[0].unmet.value(), 100.0, 1e-6);
  // Only internal self-discharge may move the SoC, never the router.
  EXPECT_NEAR(bats[0].soc(), 0.35, 1e-6);
}

TEST(Router, DischargeFloorPartiallyHonored) {
  auto bats = make_batteries(1, 0.42);
  const std::vector<util::Watts> demands{watts(150.0)};
  const auto order = natural_order(1);
  const std::vector<double> floor{0.40};
  route_power(watts(0.0), demands, bats, order, RouterParams{}, minutes(30.0), floor);
  // The router may not discharge below the floor; standing self-discharge
  // over the 30-minute step accounts for the tiny epsilon.
  EXPECT_GE(bats[0].soc(), 0.40 - 1e-4);
}

TEST(Router, EveryBatterySteppedOncePerTick) {
  auto bats = make_batteries(3, 0.7);
  const std::vector<util::Watts> demands{watts(0.0), watts(0.0), watts(0.0)};
  const auto order = natural_order(3);
  route_power(watts(0.0), demands, bats, order, RouterParams{}, minutes(1.0));
  for (const auto& b : bats) {
    EXPECT_DOUBLE_EQ(b.counters().time_total.value(), 60.0);
  }
}

TEST(Router, EnergyConservationAcrossRoute) {
  auto bats = make_batteries(3, 0.6);
  const std::vector<util::Watts> demands{watts(120.0), watts(60.0), watts(200.0)};
  const auto order = natural_order(3);
  const auto r = route_power(watts(250.0), demands, bats, order, RouterParams{},
                             minutes(1.0));
  double solar_used = 0.0;
  for (const auto& n : r.nodes) {
    solar_used += n.solar_used.value() + n.charge_drawn.value();
    // Per-node demand balance.
    EXPECT_NEAR(n.demand.value(),
                n.solar_used.value() + n.utility_used.value() +
                    n.battery_delivered.value() + n.unmet.value(),
                1e-6);
  }
  EXPECT_NEAR(solar_used + r.solar_curtailed.value(), 250.0, 1e-6);
}

TEST(Router, RejectsBadArguments) {
  auto bats = make_batteries(1, 0.5);
  const std::vector<util::Watts> demands{watts(10.0), watts(10.0)};  // size mismatch
  const auto order = natural_order(1);
  EXPECT_THROW(route_power(watts(0.0), demands, bats, order, RouterParams{},
                           minutes(1.0)),
               util::PreconditionError);
}

TEST(Meter, AccumulatesAndReportsUtilization) {
  auto bats = make_batteries(1, 0.5);
  const std::vector<util::Watts> demands{watts(100.0)};
  const auto order = natural_order(1);
  EnergyMeter meter;
  for (int i = 0; i < 60; ++i) {
    const auto r = route_power(watts(200.0), demands, bats, order, RouterParams{},
                               minutes(1.0));
    meter.add(r, minutes(1.0));
  }
  EXPECT_NEAR(meter.solar_available().value(), 200.0, 1e-9);
  EXPECT_NEAR(meter.solar_to_load().value(), 100.0, 1e-9);
  EXPECT_GT(meter.solar_to_charge().value(), 0.0);
  EXPECT_GT(meter.solar_utilization(), 0.5);
  EXPECT_DOUBLE_EQ(meter.unmet().value(), 0.0);
}

}  // namespace
}  // namespace baat::power
