// Edge-case and failure-injection tests: configurations at the boundary of
// the supported envelope, degraded sensing, and degenerate fleets. The
// simulator must stay physical and keep its invariants in all of them.

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace baat::sim {
namespace {

TEST(EdgeCases, SingleNodeCluster) {
  ScenarioConfig cfg = prototype_scenario();
  cfg.nodes = 1;
  Cluster c{cfg};
  const DayResult r = c.run_day(solar::DayType::Cloudy);
  EXPECT_EQ(r.nodes.size(), 1u);
  EXPECT_GT(r.throughput_work, 0.0);
  // Hiding/migration policies must degrade gracefully with nowhere to go.
  cfg.policy = core::PolicyKind::Baat;
  Cluster cb{cfg};
  const DayResult rb = cb.run_day(solar::DayType::Rainy);
  EXPECT_EQ(rb.migrations, 0);
}

TEST(EdgeCases, CoarseTimeStep) {
  ScenarioConfig cfg = prototype_scenario();
  cfg.dt = util::minutes(5.0);  // the supported maximum
  Cluster c{cfg};
  const DayResult r = c.run_day(solar::DayType::Sunny);
  EXPECT_NEAR(r.soc_histogram.total_weight(), 6.0 * 86400.0, 1.0);
  EXPECT_GT(r.throughput_work, 0.0);
}

TEST(EdgeCases, FullDayServiceWindow) {
  ScenarioConfig cfg = prototype_scenario();
  cfg.day_start = util::hours(0.0);
  cfg.day_end = util::hours(24.0);
  Cluster c{cfg};
  const DayResult r = c.run_day(solar::DayType::Sunny);
  // The window-close bookkeeping at exactly 24 h must still retire the VMs.
  EXPECT_GT(r.throughput_work, 0.0);
  EXPECT_GT(r.jobs_finished, 0);
}

TEST(EdgeCases, UtilityBackedClusterBarelyAges) {
  // With a generous utility tie the batteries are never needed: the green
  // cycling stress disappears and only calendar aging remains.
  ScenarioConfig cfg = prototype_scenario();
  cfg.router.utility_budget = util::watts(5000.0);
  Cluster c{cfg};
  MultiDayOptions opts;
  opts.days = 10;
  opts.weather = mixed_weather(10, 0, 0, 1);  // all rainy — worst case
  opts.probe_every_days = 0;
  opts.keep_days = true;
  const MultiDayResult run = run_multi_day(c, opts);
  EXPECT_GT(run.min_health_end, 0.995);
  for (const DayResult& d : run.days) {
    EXPECT_DOUBLE_EQ(d.total_downtime().value(), 0.0);
    EXPECT_GT(d.meter.utility_used().value(), 0.0);
  }
}

TEST(EdgeCases, NoisySensorsDoNotBreakControl) {
  // 10x the default measurement noise: metrics stay in range and the day
  // completes (the controller may act suboptimally, never unphysically).
  ScenarioConfig cfg = prototype_scenario();
  cfg.policy = core::PolicyKind::Baat;
  cfg.sensor_noise.voltage_sigma = 0.1;
  cfg.sensor_noise.current_sigma = 0.5;
  cfg.sensor_noise.temperature_sigma = 2.0;
  Cluster c{cfg};
  const DayResult r = c.run_day(solar::DayType::Cloudy);
  for (const auto& n : r.nodes) {
    EXPECT_GE(n.metrics_day.ddt, 0.0);
    EXPECT_LE(n.metrics_day.ddt, 1.0);
    EXPECT_GE(n.metrics_day.pc, 0.25 - 1e-9);
  }
}

TEST(EdgeCases, DeadBatteryNodeSurvivesTheDay) {
  // One battery arrives end-of-life (deep seeded damage): its node browns
  // out under deficit, the rest of the fleet keeps working.
  ScenarioConfig cfg = prototype_scenario();
  Cluster c{cfg};
  battery::AgingState dead;
  dead.shedding = 0.5;
  dead.sulphation = 0.2;
  c.batteries_mutable()[2].set_aging_state(dead);
  EXPECT_TRUE(c.batteries()[2].end_of_life());
  const DayResult r = c.run_day(solar::DayType::Rainy);
  EXPECT_GT(r.throughput_work, 0.0);
  // Other nodes stay within physical bounds.
  for (const auto& b : c.batteries()) {
    EXPECT_GE(b.soc(), 0.0);
    EXPECT_LE(b.soc(), 1.0);
  }
}

TEST(EdgeCases, ZeroReplicaDeploymentIdles) {
  ScenarioConfig cfg = prototype_scenario();
  cfg.daily_jobs = {};  // explicit empty plan...
  cfg.replicas = 0;     // ...and nothing to regenerate from
  Cluster c{cfg};
  const DayResult r = c.run_day(solar::DayType::Sunny);
  EXPECT_DOUBLE_EQ(r.throughput_work, 0.0);
  EXPECT_EQ(r.jobs_finished, 0);
  // Idle servers still draw idle power during the window.
  EXPECT_GT(r.meter.solar_to_load().value(), 0.0);
}

TEST(EdgeCases, TinyBatteriesBottomOutSafely) {
  // 10 W/Ah ratio with an old fleet on rainy days: maximal stress.
  ScenarioConfig cfg = with_server_battery_ratio(prototype_scenario(), 10.0);
  cfg.policy = core::PolicyKind::Baat;
  Cluster c{cfg};
  seed_aged_fleet(c, six_month_aged_state());
  MultiDayOptions opts;
  opts.days = 5;
  opts.weather = mixed_weather(5, 0, 0, 1);
  opts.probe_every_days = 0;
  const MultiDayResult run = run_multi_day(c, opts);
  EXPECT_GT(run.min_health_end, 0.05);  // the capacity floor holds
  for (const auto& b : c.batteries()) {
    EXPECT_GE(b.soc(), 0.0);
  }
}

TEST(EdgeCases, ManyNodesScaleLinearly) {
  ScenarioConfig cfg = prototype_scenario();
  cfg.nodes = 24;
  cfg.daily_jobs = default_daily_jobs(8);  // keep the fleet busy
  cfg.plant.peak = util::watts(6000.0);
  Cluster c{cfg};
  const DayResult r = c.run_day(solar::DayType::Cloudy);
  EXPECT_EQ(r.nodes.size(), 24u);
  EXPECT_NEAR(r.soc_histogram.total_weight(), 24.0 * 86400.0, 10.0);
}

}  // namespace
}  // namespace baat::sim
