#include <gtest/gtest.h>

#include "core/demand.hpp"
#include "util/require.hpp"

namespace baat::core {
namespace {

using util::watt_hours;

DemandProfile profile(double power_frac, double energy_wh) {
  DemandProfile p;
  p.power_fraction_of_peak = power_frac;
  p.energy_request = watt_hours(energy_wh);
  return p;
}

TEST(Demand, FiftyPercentRuleForPowerClass) {
  EXPECT_EQ(classify(profile(0.51, 100.0)).power, PowerClass::Large);
  EXPECT_EQ(classify(profile(0.50, 100.0)).power, PowerClass::Small);
  EXPECT_EQ(classify(profile(0.10, 100.0)).power, PowerClass::Small);
}

TEST(Demand, EnergyClassThreshold) {
  EXPECT_EQ(classify(profile(0.3, 1000.0)).energy, EnergyClass::More);
  EXPECT_EQ(classify(profile(0.3, 100.0)).energy, EnergyClass::Less);
}

TEST(Demand, CustomThresholds) {
  DemandThresholds t;
  t.power_large_fraction = 0.30;
  t.energy_more = watt_hours(50.0);
  const DemandClass c = classify(profile(0.4, 80.0), t);
  EXPECT_EQ(c.power, PowerClass::Large);
  EXPECT_EQ(c.energy, EnergyClass::More);
}

TEST(Demand, Table3WeightMapping) {
  // Large/Less: ΔNAT Medium, ΔCF High, ΔPC High.
  const AgingWeights ll = weights_for({PowerClass::Large, EnergyClass::Less});
  EXPECT_DOUBLE_EQ(ll.a_cf, 0.5);
  EXPECT_DOUBLE_EQ(ll.b_pc, 0.5);
  EXPECT_DOUBLE_EQ(ll.c_nat, 0.3);
  // Large/More: all High.
  const AgingWeights lm = weights_for({PowerClass::Large, EnergyClass::More});
  EXPECT_DOUBLE_EQ(lm.a_cf, 0.5);
  EXPECT_DOUBLE_EQ(lm.b_pc, 0.5);
  EXPECT_DOUBLE_EQ(lm.c_nat, 0.5);
  // Small/More: ΔNAT High, ΔCF Low, ΔPC Medium.
  const AgingWeights sm = weights_for({PowerClass::Small, EnergyClass::More});
  EXPECT_DOUBLE_EQ(sm.a_cf, 0.2);
  EXPECT_DOUBLE_EQ(sm.b_pc, 0.3);
  EXPECT_DOUBLE_EQ(sm.c_nat, 0.5);
  // Small/Less: all Low.
  const AgingWeights sl = weights_for({PowerClass::Small, EnergyClass::Less});
  EXPECT_DOUBLE_EQ(sl.a_cf, 0.2);
  EXPECT_DOUBLE_EQ(sl.b_pc, 0.2);
  EXPECT_DOUBLE_EQ(sl.c_nat, 0.2);
}

TEST(Demand, ProfileForHeavyWorkloadIsLarge) {
  const server::ServerSpec host;
  const auto spec = workload::spec_for(workload::Kind::SoftwareTesting);
  const DemandProfile p = profile_for(spec, host);
  const DemandClass c = classify(p);
  // "Resource-hungry and time-consuming" → Large power, More energy.
  EXPECT_EQ(c.power, PowerClass::Large);  // 5 of 8 cores at 0.9 peak util
  EXPECT_EQ(c.energy, EnergyClass::More);
}

TEST(Demand, SixWorkloadsCoverMultipleQuadrants) {
  const server::ServerSpec host;
  bool saw_large = false;
  bool saw_small = false;
  bool saw_more = false;
  bool saw_less = false;
  for (workload::Kind k : workload::kAllKinds) {
    const DemandClass c = classify(profile_for(workload::spec_for(k), host));
    saw_large |= c.power == PowerClass::Large;
    saw_small |= c.power == PowerClass::Small;
    saw_more |= c.energy == EnergyClass::More;
    saw_less |= c.energy == EnergyClass::Less;
  }
  EXPECT_TRUE(saw_large);
  EXPECT_TRUE(saw_small);
  EXPECT_TRUE(saw_more);
  EXPECT_TRUE(saw_less);
}

TEST(Demand, ProfileScalesWithHostShare) {
  server::ServerSpec big;
  big.cores = 32.0;
  const auto spec = workload::spec_for(workload::Kind::KMeansClustering);
  const DemandProfile on_big = profile_for(spec, big);
  const DemandProfile on_small = profile_for(spec, server::ServerSpec{});
  EXPECT_LT(on_big.power_fraction_of_peak, on_small.power_fraction_of_peak);
}

TEST(Demand, ServiceEnergyAssessedPerDay) {
  const server::ServerSpec host;
  const auto web = workload::spec_for(workload::Kind::WebServing);
  const DemandProfile p = profile_for(web, host);
  // 24 h at base utilization: substantial energy request despite modest power.
  EXPECT_GT(p.energy_request.value(), 100.0);
}

TEST(Demand, RejectsNegativeProfile) {
  EXPECT_THROW(classify(profile(-0.1, 10.0)), util::PreconditionError);
  EXPECT_THROW(classify(profile(0.1, -10.0)), util::PreconditionError);
}

TEST(Demand, ClassNames) {
  EXPECT_EQ(power_class_name(PowerClass::Large), "Large");
  EXPECT_EQ(energy_class_name(EnergyClass::Less), "Less");
}

}  // namespace
}  // namespace baat::core
