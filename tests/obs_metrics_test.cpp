#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace baat::obs {
namespace {

// Minimal JSON helper: the number following `"key": ` in `json`.
double number_after(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << "missing key " << key << " in:\n" << json;
  if (pos == std::string::npos) return NAN;
  return std::stod(json.substr(pos + needle.size()));
}

TEST(Metrics, CounterSemantics) {
  Registry reg;
  Counter& c = reg.counter("a.b");
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Same name resolves to the same instance.
  EXPECT_EQ(&reg.counter("a.b"), &c);
  c.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(Metrics, GaugeSemantics) {
  Registry reg;
  Gauge& g = reg.gauge("x");
  g.set(4.0);
  g.set(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
  EXPECT_EQ(&reg.gauge("x"), &g);
}

TEST(Metrics, LabeledNamesAreDistinctSeries) {
  Registry reg;
  reg.counter("policy.decisions", "migration").inc(3.0);
  reg.counter("policy.decisions", "dvfs").inc();
  EXPECT_DOUBLE_EQ(reg.counter("policy.decisions{migration}").value(), 3.0);
  EXPECT_DOUBLE_EQ(reg.counter("policy.decisions{dvfs}").value(), 1.0);
  EXPECT_EQ(reg.find_counter("policy.decisions"), nullptr);
}

TEST(Metrics, HistogramSemantics) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {10.0, 100.0});
  h.add(5.0);
  h.add(10.0);   // boundary is inclusive for the finite bucket
  h.add(50.0);
  h.add(500.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 565.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  ASSERT_EQ(h.bucket_count(), 3u);
  EXPECT_EQ(h.bucket_value(0), 2u);
  EXPECT_EQ(h.bucket_value(1), 1u);
  EXPECT_EQ(h.bucket_value(2), 1u);
  EXPECT_TRUE(std::isinf(h.bucket_upper(2)));
  // Re-registration returns the existing histogram, bounds ignored.
  EXPECT_EQ(&reg.histogram("lat", {1.0}), &h);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_value(1), 0u);
}

TEST(Metrics, JsonExportRoundTrip) {
  Registry reg;
  reg.counter("jobs").inc(7.0);
  reg.gauge("node.health", "2").set(0.875);
  Histogram& h = reg.histogram("dur", {100.0});
  h.add(42.0);
  h.add(250.0);

  const std::string json = reg.json();
  EXPECT_DOUBLE_EQ(number_after(json, "jobs"), 7.0);
  EXPECT_DOUBLE_EQ(number_after(json, "node.health{2}"), 0.875);
  EXPECT_DOUBLE_EQ(number_after(json, "count"), 2.0);
  EXPECT_DOUBLE_EQ(number_after(json, "sum"), 292.0);
  EXPECT_NE(json.find("\"le\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
  // Balanced braces (no string values in metric JSON, so a raw count works).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Metrics, ExportIsByteStable) {
  Registry reg;
  reg.counter("b").inc();
  reg.counter("a").inc(2.0);
  reg.gauge("g").set(1.25);
  EXPECT_EQ(reg.json(), reg.json());
  EXPECT_EQ(reg.csv(), reg.csv());
  // Sorted name order regardless of registration order.
  EXPECT_LT(reg.json().find("\"a\""), reg.json().find("\"b\""));
}

TEST(Metrics, CsvExport) {
  Registry reg;
  reg.counter("hits").inc(3.0);
  reg.histogram("d", {1.0}).add(0.5);
  std::istringstream in{reg.csv()};
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "type,name,field,value");
  EXPECT_NE(reg.csv().find("counter,\"hits\",value,3"), std::string::npos);
  EXPECT_NE(reg.csv().find("histogram,\"d\",count,1"), std::string::npos);
}

TEST(Metrics, ResetZeroesButKeepsHandles) {
  Registry reg;
  Counter& c = reg.counter("keep");
  c.inc(5.0);
  reg.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_EQ(&reg.counter("keep"), &c);  // entry survived
  c.inc();
  EXPECT_DOUBLE_EQ(reg.counter("keep").value(), 1.0);
}

TEST(Metrics, RegistryIdsAreUniqueAndSurviveInPlaceOps) {
  Registry a;
  Registry b;
  EXPECT_NE(a.id(), 0u);
  EXPECT_NE(a.id(), b.id());

  // In-place operations keep every entry node alive, so cached handles
  // stay valid and the id must not change.
  const std::uint64_t id = a.id();
  a.counter("x").inc();
  a.reset();
  EXPECT_EQ(a.id(), id);
  b.counter("x").inc(3.0);
  a.merge(b);
  EXPECT_EQ(a.id(), id);
  EXPECT_EQ(a.counter("x").value(), 3.0);
}

TEST(Metrics, RegistryRetiresIdWhenNodesAreDestroyedOrTransferred) {
  // The id is how hot-path handle caches (e.g. the router's thread-local
  // counter cache) detect that their interned pointers went stale. Every
  // special member that destroys or transfers map nodes must hand out
  // fresh ids on both sides, so no cache keyed on an old id can validate
  // against dangling or re-owned entries.
  Registry a;
  a.counter("x").inc();
  const std::uint64_t a_id = a.id();

  Registry copied{a};  // new entry set => new id; source untouched
  EXPECT_NE(copied.id(), a_id);
  EXPECT_EQ(a.id(), a_id);

  Registry moved{std::move(a)};  // nodes transferred => both ids retire
  EXPECT_NE(moved.id(), a_id);
  EXPECT_NE(a.id(), a_id);  // NOLINT(bugprone-use-after-move): tests the contract

  Registry target;
  target.counter("y").inc();
  const std::uint64_t target_id = target.id();
  const std::uint64_t moved_id = moved.id();
  target = copied;  // copy-assign destroys target's old nodes
  EXPECT_NE(target.id(), target_id);
  const std::uint64_t target_id2 = target.id();
  target = std::move(moved);  // move-assign: target nodes destroyed, source transferred
  EXPECT_NE(target.id(), target_id2);
  EXPECT_NE(moved.id(), moved_id);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(target.counter("x").value(), 1.0);
}

TEST(Metrics, FormatNumberIsCompactAndExact) {
  EXPECT_EQ(format_number(3.0), "3");
  EXPECT_EQ(format_number(-12.0), "-12");
  EXPECT_EQ(format_number(0.875), "0.875");
  // Round-trips through parse exactly.
  EXPECT_DOUBLE_EQ(std::stod(format_number(1.0 / 3.0)), 1.0 / 3.0);
}

TEST(Timer, RecordsWhenEnabled) {
  Registry reg;
  Histogram& h = reg.histogram("t_ns", duration_bounds_ns());
  set_profiling_enabled(true);
  {
    ScopedTimer t{h};
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  set_profiling_enabled(false);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.sum(), 0.0);
}

TEST(Timer, DisabledPathIsEffectivelyFree) {
  Registry reg;
  Histogram& h = reg.histogram("t2_ns", duration_bounds_ns());
  set_profiling_enabled(false);
  constexpr int kIters = 1'000'000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    ScopedTimer t{h};
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(h.count(), 0u);
  // ~a flag check per scope. 100 ns/iter is an order of magnitude of slack
  // over what this costs even on a loaded CI box.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count(),
            100ll * kIters);
}

// ---------------------------------------------------------------------------
// Export hardening: hostile series names must never break the JSON/CSV
// exports, and non-finite values must serialize as deterministic literals.
// ---------------------------------------------------------------------------

TEST(Escaping, JsonQuoteHandlesHostileNames) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("he said \"hi\""), "\"he said \\\"hi\\\"\"");
  EXPECT_EQ(json_quote("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(json_quote("line\nbreak\ttab\rret"), "\"line\\nbreak\\ttab\\rret\"");
  EXPECT_EQ(json_quote(std::string("nul\0byte", 8)), "\"nul\\u0000byte\"");
  EXPECT_EQ(json_quote("\x01\x1f"), "\"\\u0001\\u001f\"");
}

TEST(Escaping, CsvQuoteIsRfc4180WithEscapedLineBreaks) {
  EXPECT_EQ(csv_quote("plain"), "\"plain\"");
  EXPECT_EQ(csv_quote("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(csv_quote("two\nlines\r"), "\"two\\nlines\\r\"");
  EXPECT_EQ(csv_quote("comma,stays"), "\"comma,stays\"");
}

TEST(Escaping, FormatNumberEmitsDeterministicNonFiniteLiterals) {
  EXPECT_EQ(format_number(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_number(-std::numeric_limits<double>::infinity()), "-inf");
  // And finite round-trips stay exact through the %.17g path.
  EXPECT_EQ(std::stod(format_number(0.1)), 0.1);
  EXPECT_EQ(std::stod(format_number(1e-300)), 1e-300);
}

TEST(Escaping, FuzzedHostileNamesSurviveBothExports) {
  // Random names drawn from a deliberately nasty alphabet, registered as
  // counter names and labels, then pushed through both export formats. The
  // JSON export must stay parseable in the ways a dumb checker can verify:
  // balanced quoting, no raw control bytes, backslashes only opening legal
  // escapes. The CSV export must keep one record per line.
  const std::string alphabet = "ab\"\\\n\r\t,{}[]:\x01\x1f ";
  util::Rng rng{20260808};
  Registry reg;
  for (int i = 0; i < 64; ++i) {
    std::string name = "m" + std::to_string(i) + "_";  // unique even on collision
    const int len = static_cast<int>(rng.uniform(1.0, 12.0));
    for (int k = 0; k < len; ++k) {
      name += alphabet[static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(alphabet.size()) - 0.001))];
    }
    reg.counter(name).inc(static_cast<double>(i));
    reg.gauge("g", name).set(static_cast<double>(i));
  }

  const std::string json = reg.json();
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (!in_string) {
      if (c == '"') in_string = true;
      continue;
    }
    // Inside a string literal: no raw control bytes, backslashes only open
    // legal escapes, an unescaped quote closes the literal.
    ASSERT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control byte inside a JSON string at offset " << i;
    if (c == '\\') {
      ASSERT_LT(i + 1, json.size());
      const char n = json[i + 1];
      ASSERT_TRUE(n == '"' || n == '\\' || n == 'n' || n == 't' || n == 'r' ||
                  n == 'u')
          << "illegal escape \\" << n;
      ++i;  // skip the escaped character
      continue;
    }
    if (c == '"') in_string = false;
  }
  EXPECT_FALSE(in_string) << "unbalanced quotes in JSON export";

  std::ostringstream csv;
  reg.write_csv(csv);
  std::istringstream lines{csv.str()};
  std::size_t rows = 0;
  for (std::string line; std::getline(lines, line);) ++rows;
  // Header + 64 counters + 64 gauges, no name allowed to add extra lines.
  EXPECT_EQ(rows, 1u + 128u);
}

}  // namespace
}  // namespace baat::obs
