// Sharded-datacenter determinism suite (DESIGN.md §5h). The load-bearing
// claims pinned here:
//  * every result/metric/trace byte is independent of --shard-workers,
//    clean and faulted, across all math tiers;
//  * a 1-shard datacenter reproduces the unsharded Cluster bit-for-bit;
//  * a shard's trajectory is keyed on its index, never the shard count or
//    the worker permutation, so growing a datacenter never perturbs
//    existing shards;
//  * sectioned checkpoints round-trip to bit-identical continuations.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "sim/datacenter.hpp"
#include "sim/experiment.hpp"
#include "util/require.hpp"
#include "util/sim_clock.hpp"

namespace baat::sim {
namespace {

ScenarioConfig small_scenario(bool faulted = false,
                              battery::MathMode math = battery::MathMode::Exact) {
  ScenarioConfig cfg = prototype_scenario();
  cfg.nodes = 3;
  cfg.seed = 97;
  cfg.bank.math = math;
  if (faulted) {
    cfg.faults = fault::parse_fault_plan(
        "sensor_noise:soc:0.03,pv_dropout:day=1:hours=3,meter_glitch:p=0.02");
    cfg.guard.enabled = true;
  }
  return cfg;
}

DatacenterConfig dc_config(std::size_t shards, std::size_t workers,
                           const ScenarioConfig& scenario,
                           const std::string& demand = "") {
  DatacenterConfig cfg;
  cfg.scenario = scenario;
  cfg.shards = shards;
  cfg.workers = workers;
  if (!demand.empty()) cfg.demand = workload::parse_demand_spec(demand);
  return cfg;
}

std::string day_bytes(const DayResult& d) {
  snapshot::SnapshotWriter w;
  save_state(w, d);
  return std::string(w.bytes().begin(), w.bytes().end());
}

std::string multi_day_bytes(const MultiDayResult& r) {
  snapshot::SnapshotWriter w;
  save_state(w, r);
  return std::string(w.bytes().begin(), w.bytes().end());
}

std::string shard_state_bytes(const Datacenter& dc, std::size_t i) {
  snapshot::SnapshotWriter w;
  dc.shard(i).save_state(w);
  return std::string(w.bytes().begin(), w.bytes().end());
}

/// Run `days` simulated days and return (per-day result bytes, merged
/// metrics JSON) — the full externally visible output of the run.
std::pair<std::vector<std::string>, std::string> run_days(const DatacenterConfig& cfg,
                                                          int days) {
  util::set_sim_time(0.0);
  Datacenter dc{cfg};
  std::vector<std::string> out;
  const solar::DayType pattern[] = {solar::DayType::Sunny, solar::DayType::Cloudy,
                                    solar::DayType::Rainy};
  for (int d = 0; d < days; ++d) {
    out.push_back(day_bytes(dc.run_day(pattern[d % 3])));
  }
  obs::Registry merged;
  dc.merge_metrics_into(merged);
  return {out, merged.json()};
}

TEST(Datacenter, ValidatesConfig) {
  DatacenterConfig cfg = dc_config(0, 1, small_scenario());
  EXPECT_THROW(Datacenter{cfg}, util::PreconditionError);
  cfg.shards = 2;
  cfg.scenario.shard = 1;  // the datacenter stamps shard indices itself
  EXPECT_THROW(Datacenter{cfg}, util::PreconditionError);
}

TEST(Datacenter, NodeCountTotalsShards) {
  Datacenter dc{dc_config(4, 1, small_scenario())};
  EXPECT_EQ(dc.shard_count(), 4u);
  EXPECT_EQ(dc.node_count(), 12u);
  EXPECT_EQ(dc.shard_ptrs().size(), 4u);
}

TEST(Datacenter, WorkerCountNeverChangesResultsClean) {
  const auto base = run_days(dc_config(4, 1, small_scenario()), 3);
  for (std::size_t workers : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const auto got = run_days(dc_config(4, workers, small_scenario()), 3);
    EXPECT_EQ(base.first, got.first) << workers << " workers changed day results";
    EXPECT_EQ(base.second, got.second) << workers << " workers changed metrics";
  }
}

TEST(Datacenter, WorkerCountNeverChangesResultsFaulted) {
  const auto base = run_days(dc_config(3, 1, small_scenario(true)), 3);
  for (std::size_t workers : {std::size_t{3}, std::size_t{8}}) {
    const auto got = run_days(dc_config(3, workers, small_scenario(true)), 3);
    EXPECT_EQ(base.first, got.first);
    EXPECT_EQ(base.second, got.second);
  }
}

TEST(Datacenter, WorkerCountNeverChangesResultsFastMath) {
  const auto base = run_days(dc_config(3, 1, small_scenario(false, battery::MathMode::Fast)), 2);
  const auto got = run_days(dc_config(3, 4, small_scenario(false, battery::MathMode::Fast)), 2);
  EXPECT_EQ(base.first, got.first);
  EXPECT_EQ(base.second, got.second);
}

TEST(Datacenter, WorkerCountNeverChangesResultsSimdMath) {
  const auto base = run_days(dc_config(3, 1, small_scenario(false, battery::MathMode::Simd)), 2);
  const auto got = run_days(dc_config(3, 4, small_scenario(false, battery::MathMode::Simd)), 2);
  EXPECT_EQ(base.first, got.first);
  EXPECT_EQ(base.second, got.second);
}

TEST(Datacenter, WorkerCountNeverChangesResultsWithDemand) {
  const std::string demand =
      "users=4000000,amplitude=0.7,spread=4,flash:day=1:mult=5:hours=2";
  const auto base = run_days(dc_config(4, 1, small_scenario(), demand), 3);
  for (std::size_t workers : {std::size_t{4}, std::size_t{8}}) {
    const auto got = run_days(dc_config(4, workers, small_scenario(), demand), 3);
    EXPECT_EQ(base.first, got.first);
    EXPECT_EQ(base.second, got.second);
  }
}

TEST(Datacenter, WorkerCountNeverChangesTrace) {
  const auto traced = [](std::size_t workers) {
    util::set_sim_time(0.0);
    obs::Registry registry;
    obs::TraceBuffer trace{4096};
    util::LogSink sink = [](util::LogLevel, const std::string&) {};
    ObsSinkScope scope{&registry, &trace, &sink};
    obs::set_trace_enabled(true);
    Datacenter dc{dc_config(3, workers, small_scenario(true))};
    dc.run_day(solar::DayType::Cloudy);
    dc.run_day(solar::DayType::Sunny);
    obs::set_trace_enabled(false);
    std::ostringstream out;
    trace.write_jsonl(out);
    return out.str();
  };
  const std::string base = traced(1);
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(base, traced(4));
  EXPECT_EQ(base, traced(8));
}

TEST(Datacenter, OneShardMatchesUnshardedClusterExactly) {
  util::set_sim_time(0.0);
  ScenarioConfig cfg = small_scenario(true);
  Cluster cluster{cfg};
  std::vector<std::string> single;
  for (auto t : {solar::DayType::Sunny, solar::DayType::Rainy, solar::DayType::Cloudy}) {
    single.push_back(day_bytes(cluster.run_day(t)));
  }
  util::set_sim_time(0.0);
  Datacenter dc{dc_config(1, 4, cfg)};
  std::vector<std::string> sharded;
  for (auto t : {solar::DayType::Sunny, solar::DayType::Rainy, solar::DayType::Cloudy}) {
    sharded.push_back(day_bytes(dc.run_day(t)));
  }
  EXPECT_EQ(single, sharded);
  // Final fleet state is bit-identical too.
  snapshot::SnapshotWriter w;
  cluster.save_state(w);
  EXPECT_EQ(std::string(w.bytes().begin(), w.bytes().end()), shard_state_bytes(dc, 0));
}

TEST(Datacenter, ShardTrajectoriesAreKeyedOnIndexNotShardCount) {
  // Growing the datacenter must never perturb existing shards: shards 0 and
  // 1 of a 2-shard and a 4-shard datacenter evolve bit-identically.
  util::set_sim_time(0.0);
  Datacenter two{dc_config(2, 2, small_scenario())};
  two.run_day(solar::DayType::Sunny);
  two.run_day(solar::DayType::Cloudy);
  util::set_sim_time(0.0);
  Datacenter four{dc_config(4, 3, small_scenario())};
  four.run_day(solar::DayType::Sunny);
  four.run_day(solar::DayType::Cloudy);
  EXPECT_EQ(shard_state_bytes(two, 0), shard_state_bytes(four, 0));
  EXPECT_EQ(shard_state_bytes(two, 1), shard_state_bytes(four, 1));
}

TEST(Datacenter, ShardsEvolveIndependently) {
  // Distinct shards re-key every stream, so identical scenarios still
  // produce distinct trajectories (no accidental stream sharing).
  util::set_sim_time(0.0);
  Datacenter dc{dc_config(3, 1, small_scenario())};
  dc.run_day(solar::DayType::Cloudy);
  EXPECT_NE(shard_state_bytes(dc, 0), shard_state_bytes(dc, 1));
  EXPECT_NE(shard_state_bytes(dc, 1), shard_state_bytes(dc, 2));
}

TEST(Datacenter, MergedGaugesCarryGlobalNodeIndices) {
  // Regression: node gauges used to be labelled with the shard-local index,
  // so every shard's node 0 aliased onto one gauge at merge time.
  util::set_sim_time(0.0);
  Datacenter dc{dc_config(2, 1, small_scenario())};
  dc.run_day(solar::DayType::Sunny);
  obs::Registry merged;
  dc.merge_metrics_into(merged);
  const std::string json = merged.json();
  for (const char* label : {"node.soc{0}", "node.soc{1}", "node.soc{2}",
                            "node.soc{3}", "node.soc{4}", "node.soc{5}"}) {
    EXPECT_NE(json.find(label), std::string::npos)
        << "missing global node gauge " << label;
  }
}

TEST(Datacenter, DemandInstallsPerShardSchedules) {
  util::set_sim_time(0.0);
  Datacenter dc{dc_config(2, 1, small_scenario(), "users=4000000,cap=8,spread=6")};
  const DayResult r = dc.run_day(solar::DayType::Sunny);
  EXPECT_GT(r.jobs_finished, 0);
  util::set_sim_time(0.0);
  Datacenter fixed{dc_config(2, 1, small_scenario())};
  const DayResult f = fixed.run_day(solar::DayType::Sunny);
  // The demand-driven plan deviates from the fixed six-job plan.
  EXPECT_NE(day_bytes(r), day_bytes(f));
}

TEST(Datacenter, ShardSectionsRoundTripToBitIdenticalContinuation) {
  const std::string path = testing::TempDir() + "dc_sections_roundtrip.snap";
  const auto run_split = [&](int before, int after) {
    util::set_sim_time(0.0);
    Datacenter dc{dc_config(3, 2, small_scenario(true))};
    for (int d = 0; d < before; ++d) dc.run_day(solar::DayType::Sunny);
    {
      snapshot::SectionFileWriter out(path, 1234, dc.shard_count());
      dc.save_shard_sections(out);
      out.commit();
    }
    util::set_sim_time(0.0);
    Datacenter fresh{dc_config(3, 4, small_scenario(true))};
    snapshot::SectionFileReader in(path, 1234);
    fresh.load_shard_sections(in);
    in.finish();
    fresh.resume_at_day(before);
    util::set_sim_time(before * 86400.0);
    std::string last;
    for (int d = 0; d < after; ++d) last = day_bytes(fresh.run_day(solar::DayType::Cloudy));
    return last;
  };
  const std::string resumed = run_split(2, 2);
  util::set_sim_time(0.0);
  Datacenter straight{dc_config(3, 2, small_scenario(true))};
  straight.run_day(solar::DayType::Sunny);
  straight.run_day(solar::DayType::Sunny);
  straight.run_day(solar::DayType::Cloudy);
  const std::string direct = day_bytes(straight.run_day(solar::DayType::Cloudy));
  EXPECT_EQ(resumed, direct);
  std::remove(path.c_str());
}

TEST(DatacenterMultiDay, ResultIndependentOfWorkers) {
  const auto run = [](std::size_t workers) {
    util::set_sim_time(0.0);
    Datacenter dc{dc_config(3, workers, small_scenario())};
    MultiDayOptions opts;
    opts.days = 4;
    opts.weather = mixed_weather(4, 2, 1, 1);
    opts.probe_every_days = 2;
    opts.blackbox = false;
    return multi_day_bytes(run_datacenter_multi_day(dc, opts));
  };
  const std::string base = run(1);
  EXPECT_EQ(base, run(2));
  EXPECT_EQ(base, run(8));
}

TEST(DatacenterMultiDay, CheckpointResumeIsBitIdentical) {
  const std::string dir = testing::TempDir() + "dc_ckpt";
  const std::string demand = "users=3000000,flash:day=3:mult=3:hours=2";
  const auto make_opts = [] {
    MultiDayOptions opts;
    opts.days = 6;
    opts.weather = mixed_weather(6, 3, 2, 1);
    opts.probe_every_days = 3;
    opts.blackbox = false;
    return opts;
  };
  util::set_sim_time(0.0);
  Datacenter full{dc_config(3, 2, small_scenario(true), demand)};
  const std::string uninterrupted = multi_day_bytes(run_datacenter_multi_day(full, make_opts()));

  util::set_sim_time(0.0);
  Datacenter first{dc_config(3, 2, small_scenario(true), demand)};
  MultiDayOptions opts = make_opts();
  opts.checkpoint.every_days = 4;
  opts.checkpoint.dir = dir;
  opts.checkpoint.config_hash = 77;
  run_datacenter_multi_day(first, opts);

  util::set_sim_time(0.0);
  // Resume under a different worker count — results must not care.
  Datacenter second{dc_config(3, 8, small_scenario(true), demand)};
  MultiDayOptions resume = make_opts();
  resume.checkpoint.resume_path = dir + "/checkpoint-day-4.snap";
  resume.checkpoint.config_hash = 77;
  const std::string resumed = multi_day_bytes(run_datacenter_multi_day(second, resume));
  EXPECT_EQ(uninterrupted, resumed);
}

TEST(DatacenterMultiDay, ResumeRejectsShardCountMismatch) {
  const std::string dir = testing::TempDir() + "dc_ckpt_mismatch";
  util::set_sim_time(0.0);
  Datacenter dc{dc_config(2, 1, small_scenario())};
  MultiDayOptions opts;
  opts.days = 4;
  opts.weather = mixed_weather(4, 2, 1, 1);
  opts.probe_every_days = 0;
  opts.blackbox = false;
  opts.checkpoint.every_days = 2;
  opts.checkpoint.dir = dir;
  run_datacenter_multi_day(dc, opts);

  util::set_sim_time(0.0);
  Datacenter other{dc_config(3, 1, small_scenario())};
  MultiDayOptions resume = opts;
  resume.checkpoint.every_days = 0;
  resume.checkpoint.resume_path = dir + "/checkpoint-day-2.snap";
  try {
    run_datacenter_multi_day(other, resume);
    FAIL() << "expected SnapshotError";
  } catch (const snapshot::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("3-shard"), std::string::npos);
  }
}

TEST(DatacenterFingerprint, TracksTopologyAndDemandButNotWorkers) {
  MultiDayOptions opts;
  opts.days = 5;
  const std::uint64_t base = datacenter_fingerprint(dc_config(2, 1, small_scenario()), opts);
  EXPECT_EQ(base, datacenter_fingerprint(dc_config(2, 16, small_scenario()), opts));
  EXPECT_NE(base, datacenter_fingerprint(dc_config(3, 1, small_scenario()), opts));
  EXPECT_NE(base,
            datacenter_fingerprint(dc_config(2, 1, small_scenario(), "users=5"), opts));
  EXPECT_NE(base, 0u);
}

TEST(Datacenter, SolarDaysSampledPerShardAreIndependent) {
  util::set_sim_time(0.0);
  Datacenter dc{dc_config(3, 1, small_scenario())};
  const std::vector<solar::SolarDay> days = dc.sample_solar_days(solar::DayType::Cloudy);
  ASSERT_EQ(days.size(), 3u);
  // Shards see different clouds (independent solar streams) but the same
  // day type; run_day accepts exactly one trace per shard.
  EXPECT_THROW(dc.run_day(std::vector<solar::SolarDay>{days[0]}),
               util::PreconditionError);
  const DayResult r = dc.run_day(days);
  EXPECT_EQ(r.nodes.size(), dc.node_count());
}

}  // namespace
}  // namespace baat::sim
