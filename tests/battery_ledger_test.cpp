// Aging-attribution ledger tests (DESIGN.md §5g): the per-mechanism fade
// attribution must reproduce the kernel's capacity fraction exactly, the
// online rainflow counter must match the offline ASTM E1049 decomposition
// on any series that fits its stack, and all ledger state must round-trip
// through snapshots bit-identically.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "battery/battery.hpp"
#include "battery/fleet.hpp"
#include "battery/ledger.hpp"
#include "battery/rainflow.hpp"
#include "battery/step_math.hpp"
#include "snapshot/serialize.hpp"
#include "util/rng.hpp"

namespace baat::battery {
namespace {

using util::Amperes;
using util::Seconds;

TEST(FadeComponents, ReproduceKernelCapacityFraction) {
  // fade_components must be the kernel's own weighted terms, so for any
  // aging state above the 0.05 capacity floor the parts reproduce
  // 1 - aging_capacity_fraction to a few ulps. Bit-identity is out of reach
  // only because of the 1 - (1 - fade) round trip (and FMA contraction in
  // the kernel's sum); 1e-12 is six decades inside the 1e-9 invariant.
  const AgingParams p{};
  util::Rng rng{20260808u};
  for (int i = 0; i < 200; ++i) {
    AgingState s;
    s.corrosion = rng.uniform(0.0, 0.05);
    s.shedding = rng.uniform(0.0, 0.05);
    s.sulphation = rng.uniform(0.0, 0.05);
    s.stratification = rng.uniform(0.0, 0.05);
    s.water_loss = rng.uniform(0.0, 0.05);
    const MechanismFade f = fade_components(p, s);
    const double frac = detail::aging_capacity_fraction(p, s);
    ASSERT_GT(frac, 0.05);  // above the floor, the identity holds
    EXPECT_NEAR(f.total(), 1.0 - frac, 1e-12) << "iteration " << i;
  }
}

TEST(FadeComponents, DeltaArithmeticIsClosed) {
  const AgingParams p{};
  AgingState before;
  before.corrosion = 0.01;
  before.stratification = 0.02;
  AgingState after = before;
  after.corrosion = 0.015;
  after.stratification = 0.005;  // a full charge healed stratification

  MechanismFade delta = fade_components(p, after);
  delta -= fade_components(p, before);
  EXPECT_GT(delta.corrosion, 0.0);
  EXPECT_LT(delta.stratification, 0.0);
  EXPECT_NEAR(delta.total(),
              fade_components(p, after).total() - fade_components(p, before).total(),
              1e-15);
}

// ---------------------------------------------------------------------------
// Online vs offline rainflow equivalence.
// ---------------------------------------------------------------------------

double offline_damage(const std::vector<double>& soc, const CycleLifeCurve& curve) {
  return rainflow_damage(rainflow_count(soc), curve);
}

double online_damage(const std::vector<double>& soc, const CycleLifeCurve& curve) {
  OnlineRainflow rf{curve};
  for (double s : soc) rf.push(s);
  rf.flush_residuals();
  return rf.damage();
}

TEST(OnlineRainflow, MatchesOfflineOnTextbookSeries) {
  const CycleLifeCurve curve = curve_for(Manufacturer::Trojan);
  const std::vector<std::vector<double>> cases = {
      {},                               // empty
      {0.5},                            // single sample
      {0.5, 0.5, 0.5},                  // constant
      {1.0, 0.4},                       // one half cycle
      {0.2, 0.3, 0.4, 0.7, 0.9},        // monotone ramp
      {1.0, 0.3, 0.5, 0.35, 0.9},       // nested ripple (the classic case)
      {1.0, 0.5, 0.8, 0.2, 0.6, 0.1, 1.0},
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_NEAR(online_damage(cases[i], curve), offline_damage(cases[i], curve), 1e-12)
        << "case " << i;
  }
}

TEST(OnlineRainflow, MatchesOfflineOnRepeatedCycling) {
  const CycleLifeCurve curve = curve_for(Manufacturer::Trojan);
  std::vector<double> soc;
  for (int i = 0; i < 50; ++i) {
    soc.push_back(1.0);
    soc.push_back(0.5);
  }
  soc.push_back(1.0);
  EXPECT_NEAR(online_damage(soc, curve), offline_damage(soc, curve), 1e-12);
}

TEST(OnlineRainflow, MatchesOfflineOnRandomWalks) {
  const CycleLifeCurve curve = curve_for(Manufacturer::UPG);
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 6ULL, 7ULL, 8ULL}) {
    util::Rng rng{seed};
    std::vector<double> soc{0.5};
    for (int i = 0; i < 2000; ++i) {
      soc.push_back(util::clamp01(soc.back() + rng.uniform(-0.08, 0.08)));
    }
    const double off = offline_damage(soc, curve);
    const double on = online_damage(soc, curve);
    EXPECT_NEAR(on, off, 1e-12 * std::max(1.0, off)) << "seed " << seed;
  }
}

TEST(OnlineRainflow, DamageIsMonotoneAndFlushIsIdempotent) {
  const CycleLifeCurve curve = curve_for(Manufacturer::Trojan);
  OnlineRainflow rf{curve};
  util::Rng rng{99u};
  double soc = 0.5;
  double prev = 0.0;
  for (int i = 0; i < 5000; ++i) {
    soc = util::clamp01(soc + rng.uniform(-0.1, 0.1));
    rf.push(soc);
    ASSERT_GE(rf.damage(), prev);  // closing cycles only ever adds damage
    prev = rf.damage();
  }
  rf.flush_residuals();
  const double flushed = rf.damage();
  EXPECT_GE(flushed, prev);
  EXPECT_DOUBLE_EQ(rf.flush_residuals(), 0.0);  // nothing left to release
  EXPECT_DOUBLE_EQ(rf.damage(), flushed);
}

TEST(OnlineRainflow, DeepNestingSpillsInsteadOfGrowing) {
  // Amplitudes converging inward create one open excursion per sample —
  // the pathological pattern that would grow an unbounded stack. The
  // counter must cap at kStackDepth, keep damage finite and monotone, and
  // never lose the running total.
  const CycleLifeCurve curve = curve_for(Manufacturer::Trojan);
  OnlineRainflow rf{curve};
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    rf.push(hi);
    rf.push(lo);
    lo += 0.002;
    hi -= 0.002;
    ASSERT_LE(rf.open_points(), OnlineRainflow::kStackDepth);
    ASSERT_TRUE(std::isfinite(rf.damage()));
  }
  rf.flush_residuals();
  EXPECT_GT(rf.damage(), 0.0);
}

TEST(OnlineRainflow, SnapshotRoundTripContinuesBitIdentically) {
  const CycleLifeCurve curve = curve_for(Manufacturer::UPG);
  util::Rng rng{7u};
  std::vector<double> head;
  std::vector<double> tail;
  double s = 0.6;
  for (int i = 0; i < 700; ++i) {
    s = util::clamp01(s + rng.uniform(-0.09, 0.09));
    (i < 400 ? head : tail).push_back(s);
  }

  OnlineRainflow straight{curve};
  for (double v : head) straight.push(v);

  snapshot::SnapshotWriter w;
  straight.save_state(w);
  snapshot::SnapshotReader r{w.bytes()};
  OnlineRainflow restored{};  // default curve must be overwritten by load
  restored.load_state(r);

  EXPECT_EQ(restored.damage(), straight.damage());
  EXPECT_EQ(restored.open_points(), straight.open_points());
  for (double v : tail) {
    const double a = straight.push(v);
    const double b = restored.push(v);
    ASSERT_EQ(a, b);
  }
  straight.flush_residuals();
  restored.flush_residuals();
  EXPECT_EQ(restored.damage(), straight.damage());
}

TEST(OnlineRainflow, OversizedSnapshotStackRefused) {
  OnlineRainflow rf{};
  snapshot::SnapshotWriter w;
  w.write_f64(1000.0);  // curve fields
  w.write_f64(1.5);
  w.write_f64(0.01);
  w.write_u64(OnlineRainflow::kStackDepth + 1);  // corrupt depth
  snapshot::SnapshotReader r{w.bytes()};
  EXPECT_THROW(rf.load_state(r), snapshot::SnapshotError);
}

// ---------------------------------------------------------------------------
// Fleet-level ledger accounting.
// ---------------------------------------------------------------------------

/// Day-shaped duty: discharge, deep midday charge, evening discharge.
double duty_amps(long tick, std::size_t cell) {
  const long phase = tick % 1440;
  const double detune = 0.3 * static_cast<double>(cell);
  if (phase < 480) return 5.0 + detune;
  if (phase < 1080) return -(12.0 + detune);
  return 3.0 + detune;
}

TEST(FleetLedger, AttributionMatchesHealthAndDeltasSumToTotals) {
  FleetState fleet{LeadAcidParams{}, AgingParams{}, ThermalParams{}};
  constexpr std::size_t kCells = 4;
  for (std::size_t i = 0; i < kCells; ++i) fleet.add_cell(1.0, 1.0, 0.8);

  std::vector<CellLedgerEntry> accumulated(kCells);
  const Seconds dt{60.0};
  for (long day = 0; day < 14; ++day) {
    for (long t = 0; t < 1440; ++t) {
      for (std::size_t c = 0; c < kCells; ++c) {
        fleet.step_cell(c, Amperes{duty_amps(day * 1440 + t, c)}, dt);
      }
    }
    // Daily rollup: read the window deltas, then advance the baseline.
    for (std::size_t c = 0; c < kCells; ++c) {
      const CellLedgerEntry d = fleet.ledger_delta(c);
      accumulated[c].fade += d.fade;
      accumulated[c].cycle_damage += d.cycle_damage;
      accumulated[c].efc += d.efc;
      accumulated[c].low_soc_dwell_s += d.low_soc_dwell_s;
    }
    fleet.ledger_advance();
  }

  for (std::size_t c = 0; c < kCells; ++c) {
    const CellLedgerEntry total = fleet.ledger_total(c);
    // The attribution invariant: mechanism parts reproduce the kernel's
    // capacity fraction within 1e-9 (they are exact to a few ulps).
    EXPECT_NEAR(total.fade.total(), 1.0 - fleet.cell_health(c), 1e-9) << "cell " << c;
    // Summed window deltas reproduce the lifetime totals.
    EXPECT_NEAR(accumulated[c].fade.total(), total.fade.total(), 1e-12);
    EXPECT_NEAR(accumulated[c].cycle_damage, total.cycle_damage, 1e-12);
    EXPECT_NEAR(accumulated[c].efc, total.efc, 1e-12);
    EXPECT_NEAR(accumulated[c].low_soc_dwell_s, total.low_soc_dwell_s, 1e-6);
    // Two weeks of deep cycling consumed real cycle life and EFC.
    EXPECT_GT(total.cycle_damage, 0.0);
    EXPECT_GT(total.efc, 1.0);
    // After an advance with no steps, the window delta is empty.
  }
  fleet.ledger_advance();
  for (std::size_t c = 0; c < kCells; ++c) {
    const CellLedgerEntry d = fleet.ledger_delta(c);
    EXPECT_EQ(d.fade.total(), 0.0);
    EXPECT_EQ(d.cycle_damage, 0.0);
    EXPECT_EQ(d.efc, 0.0);
    EXPECT_EQ(d.low_soc_dwell_s, 0.0);
  }
}

TEST(FleetLedger, DisablingTheLedgerNeverChangesPhysics) {
  // The obs-off bench configuration must be physics-identical: only the
  // rainflow damage bookkeeping stops.
  auto run = [](bool ledger_on) {
    FleetState fleet{LeadAcidParams{}, AgingParams{}, ThermalParams{}};
    fleet.set_ledger_enabled(ledger_on);
    for (std::size_t i = 0; i < 3; ++i) fleet.add_cell(1.0, 1.0, 0.75);
    const Seconds dt{60.0};
    for (long t = 0; t < 3 * 1440; ++t) {
      for (std::size_t c = 0; c < 3; ++c) {
        fleet.step_cell(c, Amperes{duty_amps(t, c)}, dt);
      }
    }
    return fleet;
  };
  const FleetState on = run(true);
  const FleetState off = run(false);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(on.cell_soc(c), off.cell_soc(c));
    EXPECT_EQ(on.cell_health(c), off.cell_health(c));
    EXPECT_EQ(on.cell_temperature(c).value(), off.cell_temperature(c).value());
    EXPECT_GT(on.cell_cycle_damage(c), 0.0);
    EXPECT_EQ(off.cell_cycle_damage(c), 0.0);  // bookkeeping, not physics
  }
}

TEST(FleetLedger, LedgerStateRidesThroughFleetSnapshots) {
  FleetState fleet{LeadAcidParams{}, AgingParams{}, ThermalParams{}};
  for (std::size_t i = 0; i < 2; ++i) fleet.add_cell(1.0, 1.0, 0.8);
  const Seconds dt{60.0};
  for (long t = 0; t < 2000; ++t) {
    fleet.step_cell(0, Amperes{duty_amps(t, 0)}, dt);
    fleet.step_cell(1, Amperes{duty_amps(t, 1)}, dt);
  }
  fleet.ledger_advance();
  for (long t = 2000; t < 2600; ++t) {
    fleet.step_cell(0, Amperes{duty_amps(t, 0)}, dt);
    fleet.step_cell(1, Amperes{duty_amps(t, 1)}, dt);
  }

  snapshot::SnapshotWriter w;
  fleet.save_state(w);
  FleetState restored{LeadAcidParams{}, AgingParams{}, ThermalParams{}};
  for (std::size_t i = 0; i < 2; ++i) restored.add_cell(1.0, 1.0, 0.8);
  snapshot::SnapshotReader r{w.bytes()};
  restored.load_state(r);

  for (std::size_t c = 0; c < 2; ++c) {
    const CellLedgerEntry a = fleet.ledger_delta(c);
    const CellLedgerEntry b = restored.ledger_delta(c);
    EXPECT_EQ(a.fade.total(), b.fade.total());
    EXPECT_EQ(a.cycle_damage, b.cycle_damage);
    EXPECT_EQ(a.efc, b.efc);
    EXPECT_EQ(a.low_soc_dwell_s, b.low_soc_dwell_s);
    EXPECT_EQ(fleet.cell_cycle_damage(c), restored.cell_cycle_damage(c));
  }

  // Stepping both fleets onwards stays bit-identical, including the ledger.
  for (long t = 2600; t < 4000; ++t) {
    for (std::size_t c = 0; c < 2; ++c) {
      fleet.step_cell(c, Amperes{duty_amps(t, c)}, dt);
      restored.step_cell(c, Amperes{duty_amps(t, c)}, dt);
    }
  }
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(fleet.cell_soc(c), restored.cell_soc(c));
    EXPECT_EQ(fleet.cell_cycle_damage(c), restored.cell_cycle_damage(c));
    EXPECT_EQ(fleet.ledger_total(c).efc, restored.ledger_total(c).efc);
  }
}

}  // namespace
}  // namespace baat::battery
