// The --faults spec parser: every malformed input must be a readable
// PreconditionError, never UB — these are the fuzz-ish negative tests the
// sanitizer jobs lean on. Positive parses are checked field-by-field and
// through the to_string round-trip.

#include <gtest/gtest.h>

#include <iterator>
#include <string>

#include "fault/fault.hpp"
#include "sim/cli.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace baat {
namespace {

using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSpec;
using fault::parse_fault_plan;
using fault::parse_fault_spec;
using fault::SensorChannel;

// ---------------------------------------------------------------------------
// Positive parses, one per grammar production.
// ---------------------------------------------------------------------------

TEST(FaultPlanParse, SensorNoiseAllChannels) {
  const struct {
    const char* name;
    SensorChannel channel;
  } channels[] = {{"voltage", SensorChannel::Voltage},
                  {"current", SensorChannel::Current},
                  {"temp", SensorChannel::Temperature},
                  {"soc", SensorChannel::Soc}};
  for (const auto& c : channels) {
    const FaultSpec s =
        parse_fault_spec(std::string("sensor_noise:") + c.name + ":0.03");
    EXPECT_EQ(s.kind, FaultKind::SensorNoise);
    EXPECT_EQ(s.channel, c.channel);
    EXPECT_DOUBLE_EQ(s.magnitude, 0.03);
  }
}

TEST(FaultPlanParse, SensorBias) {
  const FaultSpec s = parse_fault_spec("sensor_bias:current:-0.5");
  EXPECT_EQ(s.kind, FaultKind::SensorBias);
  EXPECT_EQ(s.channel, SensorChannel::Current);
  EXPECT_DOUBLE_EQ(s.magnitude, -0.5);
}

TEST(FaultPlanParse, SensorStuckDefaultsHold) {
  const FaultSpec s = parse_fault_spec("sensor_stuck:p=0.01");
  EXPECT_EQ(s.kind, FaultKind::SensorStuck);
  EXPECT_DOUBLE_EQ(s.probability, 0.01);
  EXPECT_DOUBLE_EQ(s.hold_minutes, 10.0);
  const FaultSpec h = parse_fault_spec("sensor_stuck:p=0.01:hold=45");
  EXPECT_DOUBLE_EQ(h.hold_minutes, 45.0);
}

TEST(FaultPlanParse, ProbeStale) {
  const FaultSpec s = parse_fault_spec("probe_stale:p=0.25");
  EXPECT_EQ(s.kind, FaultKind::ProbeStale);
  EXPECT_DOUBLE_EQ(s.probability, 0.25);
}

TEST(FaultPlanParse, PvDropoutDefaultsStartToNoon) {
  const FaultSpec s = parse_fault_spec("pv_dropout:day=12:hours=4");
  EXPECT_EQ(s.kind, FaultKind::PvDropout);
  EXPECT_EQ(s.day, 12);
  EXPECT_DOUBLE_EQ(s.hours, 4.0);
  EXPECT_DOUBLE_EQ(s.start_hour, 12.0);
  const FaultSpec t = parse_fault_spec("pv_dropout:day=0:hours=2:start=9.5");
  EXPECT_DOUBLE_EQ(t.start_hour, 9.5);
}

TEST(FaultPlanParse, PvDerateAllDaysWhenDayOmitted) {
  const FaultSpec s = parse_fault_spec("pv_derate:factor=0.7");
  EXPECT_EQ(s.kind, FaultKind::PvDerate);
  EXPECT_DOUBLE_EQ(s.magnitude, 0.7);
  EXPECT_EQ(s.day, -1);
  const FaultSpec t = parse_fault_spec("pv_derate:factor=0.5:day=3");
  EXPECT_EQ(t.day, 3);
}

TEST(FaultPlanParse, CellWeak) {
  const FaultSpec s = parse_fault_spec("cell_weak:bank=1:capacity=0.8");
  EXPECT_EQ(s.kind, FaultKind::CellWeak);
  EXPECT_EQ(s.bank, 1u);
  EXPECT_DOUBLE_EQ(s.magnitude, 0.8);
  EXPECT_DOUBLE_EQ(s.resistance, 1.0);
  const FaultSpec r = parse_fault_spec("cell_weak:bank=0:capacity=0.9:resistance=1.6");
  EXPECT_DOUBLE_EQ(r.resistance, 1.6);
}

TEST(FaultPlanParse, CellOpenDefaultsToDayZero) {
  const FaultSpec s = parse_fault_spec("cell_open:bank=2");
  EXPECT_EQ(s.kind, FaultKind::CellOpen);
  EXPECT_EQ(s.bank, 2u);
  EXPECT_EQ(s.day, 0);
  const FaultSpec t = parse_fault_spec("cell_open:bank=2:day=5");
  EXPECT_EQ(t.day, 5);
}

TEST(FaultPlanParse, NanPoisonDefaultsToDayZero) {
  const FaultSpec s = parse_fault_spec("nan_poison:bank=1");
  EXPECT_EQ(s.kind, FaultKind::NanPoison);
  EXPECT_EQ(s.bank, 1u);
  EXPECT_EQ(s.day, 0);
  const FaultSpec t = parse_fault_spec("nan_poison:bank=0:day=2");
  EXPECT_EQ(t.day, 2);
  EXPECT_THROW((void)parse_fault_spec("nan_poison"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("nan_poison:day=2"), util::PreconditionError);
}

TEST(FaultPlanParse, MeterGlitch) {
  const FaultSpec s = parse_fault_spec("meter_glitch:p=0.02");
  EXPECT_EQ(s.kind, FaultKind::MeterGlitch);
  EXPECT_DOUBLE_EQ(s.probability, 0.02);
  EXPECT_DOUBLE_EQ(s.glitch_scale, 0.5);
  const FaultSpec t = parse_fault_spec("meter_glitch:p=0.02:scale=0.9");
  EXPECT_DOUBLE_EQ(t.glitch_scale, 0.9);
}

TEST(FaultPlanParse, CommaSeparatedPlan) {
  const FaultPlan plan = parse_fault_plan(
      "sensor_noise:soc:0.03,pv_dropout:day=12:hours=4,cell_weak:bank=1:capacity=0.8");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::SensorNoise);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::PvDropout);
  EXPECT_EQ(plan.faults[2].kind, FaultKind::CellWeak);
}

TEST(FaultPlanParse, ToStringRoundTrips) {
  const char* specs[] = {
      "sensor_noise:soc:0.03",
      "sensor_bias:voltage:0.2",
      "sensor_stuck:p=0.01:hold=30",
      "probe_stale:p=0.1",
      "pv_dropout:day=12:hours=4:start=12",
      "pv_derate:factor=0.7",
      "cell_weak:bank=1:capacity=0.8:resistance=1.5",
      "cell_open:bank=0:day=3",
      "nan_poison:bank=1:day=2",
      "meter_glitch:p=0.05:scale=0.5",
  };
  for (const char* spec : specs) {
    const FaultSpec once = parse_fault_spec(spec);
    const FaultSpec twice = parse_fault_spec(once.to_string());
    EXPECT_EQ(once.to_string(), twice.to_string()) << spec;
  }
  const FaultPlan plan =
      parse_fault_plan("sensor_noise:soc:0.03,meter_glitch:p=0.05");
  EXPECT_EQ(parse_fault_plan(plan.to_string()).to_string(), plan.to_string());
}

// ---------------------------------------------------------------------------
// Negative cases: every malformed spec throws with a readable message.
// ---------------------------------------------------------------------------

TEST(FaultPlanErrors, EmptyAndStructural) {
  EXPECT_THROW((void)parse_fault_plan(""), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_plan(","), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_plan("sensor_noise:soc:0.03,"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_plan(",sensor_noise:soc:0.03"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec(""), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec(":"), util::PreconditionError);
}

TEST(FaultPlanErrors, UnknownKindChannelField) {
  EXPECT_THROW((void)parse_fault_spec("gremlins:p=0.1"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("sensor_noise:humidity:0.1"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("probe_stale:prob=0.1"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("pv_dropout:day=1:hours=2:frequency=3"),
               util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("cell_open:bank=0:bank=1"), util::PreconditionError);
}

TEST(FaultPlanErrors, MissingRequiredFields) {
  EXPECT_THROW((void)parse_fault_spec("sensor_noise:soc"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("sensor_stuck"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("pv_dropout:day=1"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("pv_dropout:hours=2"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("pv_derate"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("cell_weak:bank=1"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("cell_weak:capacity=0.8"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("cell_open"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("meter_glitch"), util::PreconditionError);
}

TEST(FaultPlanErrors, MalformedNumbers) {
  EXPECT_THROW((void)parse_fault_spec("sensor_noise:soc:lots"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("sensor_noise:soc:nan"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("sensor_noise:soc:inf"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("sensor_stuck:p=0.1x"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("pv_dropout:day=1.5:hours=2"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("pv_dropout:day=-1:hours=2"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("pv_dropout:day=:hours=2"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("cell_weak:bank=one:capacity=0.8"),
               util::PreconditionError);
}

TEST(FaultPlanErrors, OutOfRangeValues) {
  EXPECT_THROW((void)parse_fault_spec("sensor_stuck:p=1.5"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("sensor_stuck:p=-0.1"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("sensor_stuck:p=0.1:hold=0"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("sensor_stuck:p=0.1:hold=100000"),
               util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("probe_stale:p=2"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("pv_dropout:day=1:hours=0"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("pv_dropout:day=1:hours=25"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("pv_dropout:day=1:hours=2:start=24"),
               util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("pv_derate:factor=1.2"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("pv_derate:factor=-0.1"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("cell_weak:bank=1:capacity=0"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("cell_weak:bank=1:capacity=1.1"),
               util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("cell_weak:bank=1:capacity=0.8:resistance=0.5"),
               util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("meter_glitch:p=0.1:scale=0"), util::PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("meter_glitch:p=0.1:scale=2"), util::PreconditionError);
}

TEST(FaultPlanErrors, CrossFaultValidation) {
  // Overlapping dropout windows on the same day.
  EXPECT_THROW(
      parse_fault_plan("pv_dropout:day=2:hours=4:start=10,pv_dropout:day=2:hours=4:start=12"),
      util::PreconditionError);
  // Same windows on different days are fine.
  EXPECT_NO_THROW(
      (void)parse_fault_plan("pv_dropout:day=2:hours=4,pv_dropout:day=3:hours=4"));
  // Duplicate bank-level faults on one unit.
  EXPECT_THROW(
      parse_fault_plan("cell_weak:bank=1:capacity=0.8,cell_weak:bank=1:capacity=0.9"),
      util::PreconditionError);
  EXPECT_THROW((void)parse_fault_plan("cell_open:bank=0,cell_open:bank=0:day=4"),
               util::PreconditionError);
  EXPECT_NO_THROW(
      (void)parse_fault_plan("cell_weak:bank=0:capacity=0.8,cell_weak:bank=1:capacity=0.8"));
}

TEST(FaultPlanErrors, AppendRevalidates) {
  FaultPlan plan = parse_fault_plan("cell_open:bank=1");
  EXPECT_THROW(fault::append_fault_plan(plan, parse_fault_plan("cell_open:bank=1")),
               util::PreconditionError);
  // A failed append must not corrupt the plan.
  EXPECT_EQ(plan.size(), 1u);
  fault::append_fault_plan(plan, parse_fault_plan("probe_stale:p=0.5"));
  EXPECT_EQ(plan.size(), 2u);
}

// ---------------------------------------------------------------------------
// CLI integration: --faults feeds the same parser and accumulates.
// ---------------------------------------------------------------------------

TEST(FaultPlanCli, FaultsFlagParsesAndAccumulates) {
  const sim::CliOptions opt = sim::parse_cli(
      {"--faults", "sensor_noise:soc:0.03", "--faults", "probe_stale:p=0.1"});
  ASSERT_EQ(opt.faults.size(), 2u);
  const sim::ScenarioConfig cfg = sim::scenario_from_cli(opt);
  EXPECT_EQ(cfg.faults.size(), 2u);
  EXPECT_TRUE(cfg.guard.enabled);  // fault plans switch on degraded mode
}

TEST(FaultPlanCli, CleanRunLeavesGuardDisabled) {
  const sim::ScenarioConfig cfg = sim::scenario_from_cli(sim::parse_cli({}));
  EXPECT_TRUE(cfg.faults.empty());
  EXPECT_FALSE(cfg.guard.enabled);
}

TEST(FaultPlanCli, BadFaultSpecIsReadableError) {
  EXPECT_THROW(sim::parse_cli({"--faults", "gremlins:p=0.1"}), util::PreconditionError);
  EXPECT_THROW(sim::parse_cli({"--faults"}), util::PreconditionError);
  EXPECT_THROW(sim::parse_cli({"--faults", ""}), util::PreconditionError);
  try {
    sim::parse_cli({"--faults", "sensor_stuck:p=7"});
    FAIL() << "expected PreconditionError";
  } catch (const util::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("p"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Fuzz-ish: random garbage either parses or throws PreconditionError —
// never UB, never any other exception type. ASan/UBSan make this sharp.
// ---------------------------------------------------------------------------

class FaultPlanFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultPlanFuzz, GarbageNeverCausesUb) {
  static constexpr char kCharset[] =
      "abcdefghijklmnopqrstuvwxyz0123456789:=.,-+_ eEpP";
  util::Rng rng{GetParam()};
  for (int iter = 0; iter < 400; ++iter) {
    std::string spec;
    const std::size_t len = rng.uniform_index(40);
    for (std::size_t i = 0; i < len; ++i) {
      spec.push_back(kCharset[rng.uniform_index(sizeof(kCharset) - 1)]);
    }
    try {
      const FaultPlan plan = parse_fault_plan(spec);
      // Whatever parsed must round-trip through its canonical form.
      EXPECT_EQ(parse_fault_plan(plan.to_string()).size(), plan.size());
    } catch (const util::PreconditionError&) {
      // Expected for nearly all random strings.
    }
  }
}

// Mutations of valid specs: flip one character of a well-formed spec.
TEST_P(FaultPlanFuzz, MutatedValidSpecsNeverCauseUb) {
  static constexpr const char* kValid[] = {
      "sensor_noise:soc:0.03",       "sensor_stuck:p=0.01:hold=30",
      "pv_dropout:day=12:hours=4",   "cell_weak:bank=1:capacity=0.8",
      "meter_glitch:p=0.05:scale=0.5"};
  static constexpr char kCharset[] = "abcz019:=.,-~";
  util::Rng rng{GetParam() + 1000};
  for (int iter = 0; iter < 300; ++iter) {
    std::string spec = kValid[rng.uniform_index(std::size(kValid))];
    spec[rng.uniform_index(spec.size())] =
        kCharset[rng.uniform_index(sizeof(kCharset) - 1)];
    try {
      (void)parse_fault_spec(spec);
    } catch (const util::PreconditionError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultPlanFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace baat
