#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "util/require.hpp"

namespace baat::sim {
namespace {

struct ReportFixture : ::testing::Test {
  void SetUp() override {
    cfg = prototype_scenario();
    cfg.policy = core::PolicyKind::Baat;
    cluster = std::make_unique<Cluster>(cfg);
    MultiDayOptions opts;
    opts.days = 3;
    opts.weather = mixed_weather(3, 1, 1, 1);
    opts.probe_every_days = 2;
    result = run_multi_day(*cluster, opts);
  }

  ScenarioConfig cfg;
  std::unique_ptr<Cluster> cluster;
  MultiDayResult result;
};

TEST_F(ReportFixture, ContainsEverySection) {
  ReportInputs in;
  in.config = &cfg;
  in.result = &result;
  in.cluster = cluster.get();
  in.sunshine_fraction = 0.5;
  std::ostringstream out;
  write_report(out, in);
  const std::string md = out.str();

  EXPECT_NE(md.find("# BAAT simulation report"), std::string::npos);
  EXPECT_NE(md.find("## Configuration"), std::string::npos);
  EXPECT_NE(md.find("| policy | BAAT |"), std::string::npos);
  EXPECT_NE(md.find("## Outcome"), std::string::npos);
  EXPECT_NE(md.find("## SoC distribution"), std::string::npos);
  EXPECT_NE(md.find("## Battery probes"), std::string::npos);
  EXPECT_NE(md.find("## Per-day summary"), std::string::npos);
  EXPECT_NE(md.find("## Fleet detail"), std::string::npos);
  // One per-day row per simulated day.
  std::size_t rows = 0;
  for (std::size_t p = md.find("| 0 | "); p != std::string::npos;
       p = md.find("\n| ", p + 1)) {
    ++rows;
  }
  EXPECT_GE(rows, 3u);
}

TEST_F(ReportFixture, OptionalSectionsOmitted) {
  ReportInputs in;
  in.config = &cfg;
  in.result = &result;  // no cluster, no sunshine
  std::ostringstream out;
  write_report(out, in);
  const std::string md = out.str();
  EXPECT_EQ(md.find("## Fleet detail"), std::string::npos);
  EXPECT_EQ(md.find("sunshine fraction"), std::string::npos);
}

TEST_F(ReportFixture, CustomTitle) {
  ReportInputs in;
  in.title = "Nightly aging run";
  in.config = &cfg;
  in.result = &result;
  std::ostringstream out;
  write_report(out, in);
  EXPECT_EQ(out.str().rfind("# Nightly aging run", 0), 0u);
}

TEST(Report, RejectsMissingInputs) {
  std::ostringstream out;
  EXPECT_THROW(write_report(out, ReportInputs{}), util::PreconditionError);
}

// Regression: a fleet that never crosses the EOL threshold used to render
// the horizon sentinel as a day number ("projected end-of-life: day 7300").
// The clamped estimate must be called out as beyond the horizon instead.
TEST(Report, EolBeyondHorizonIsRenderedExplicitly) {
  ScenarioConfig cfg = prototype_scenario();
  MultiDayResult barely_aged;
  barely_aged.days.resize(3);  // days_simulated() == 3
  for (auto& d : barely_aged.days) d.nodes.resize(1);  // per-day table needs a node
  barely_aged.mean_health_end = 0.9999999;
  barely_aged.min_health_end = 0.9999999;  // projection lands far past 7300 d

  ReportInputs in;
  in.config = &cfg;
  in.result = &barely_aged;
  std::ostringstream out;
  write_report(out, in);
  const std::string md = out.str();
  EXPECT_NE(md.find("beyond the 7300-day horizon"), std::string::npos) << md;
  EXPECT_EQ(md.find("end-of-life: day"), std::string::npos) << md;

  // A genuinely aging fleet still gets a concrete day.
  MultiDayResult aging = barely_aged;
  aging.min_health_end = 0.90;  // 10% fade in 3 days → EoL around day 6
  std::ostringstream out2;
  in.result = &aging;
  write_report(out2, in);
  const std::string md2 = out2.str();
  EXPECT_NE(md2.find("end-of-life: day"), std::string::npos) << md2;
  EXPECT_EQ(md2.find("beyond the"), std::string::npos) << md2;
}

}  // namespace
}  // namespace baat::sim
