#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/cli.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace baat::sim {
namespace {

TEST(Cli, DefaultsWithNoArguments) {
  const CliOptions o = parse_cli({});
  EXPECT_EQ(o.policy, core::PolicyKind::Baat);
  EXPECT_EQ(o.days, 30u);
  EXPECT_DOUBLE_EQ(o.sunshine_fraction, 0.5);
  EXPECT_EQ(o.nodes, 6u);
  EXPECT_FALSE(o.old_fleet);
  EXPECT_FALSE(o.show_help);
}

TEST(Cli, ParsesEveryFlag) {
  const CliOptions o = parse_cli({"--policy", "ebuff", "--days", "90", "--sunshine",
                                  "0.7", "--nodes", "12", "--ratio", "8", "--seed",
                                  "7", "--old-fleet", "--csv", "/tmp/out.csv"});
  EXPECT_EQ(o.policy, core::PolicyKind::EBuff);
  EXPECT_EQ(o.days, 90u);
  EXPECT_DOUBLE_EQ(o.sunshine_fraction, 0.7);
  EXPECT_EQ(o.nodes, 12u);
  EXPECT_DOUBLE_EQ(o.watts_per_ah, 8.0);
  EXPECT_EQ(o.seed, 7u);
  EXPECT_TRUE(o.old_fleet);
  EXPECT_EQ(o.csv_path, "/tmp/out.csv");
}

TEST(Cli, PolicyNames) {
  EXPECT_EQ(parse_cli({"--policy", "baat-s"}).policy, core::PolicyKind::BaatS);
  EXPECT_EQ(parse_cli({"--policy", "baat-h"}).policy, core::PolicyKind::BaatH);
  EXPECT_EQ(parse_cli({"--policy", "baat-planned", "--cycles-plan", "500"}).policy,
            core::PolicyKind::BaatPlanned);
  EXPECT_THROW(parse_cli({"--policy", "frobnicate"}), util::PreconditionError);
}

TEST(Cli, PlannedRequiresCyclesPlan) {
  EXPECT_THROW(parse_cli({"--policy", "baat-planned"}), util::PreconditionError);
}

TEST(Cli, ParsesMathTier) {
  EXPECT_EQ(parse_cli({}).math, battery::MathMode::Exact);
  EXPECT_EQ(parse_cli({"--math", "exact"}).math, battery::MathMode::Exact);
  EXPECT_EQ(parse_cli({"--math", "fast"}).math, battery::MathMode::Fast);
  EXPECT_EQ(parse_cli({"--math", "simd"}).math, battery::MathMode::Simd);
  EXPECT_THROW(parse_cli({"--math", "sloppy"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--math"}), util::PreconditionError);
  EXPECT_EQ(scenario_from_cli(parse_cli({"--math", "fast"})).bank.math,
            battery::MathMode::Fast);
  EXPECT_EQ(scenario_from_cli(parse_cli({})).bank.math, battery::MathMode::Exact);
  EXPECT_EQ(scenario_from_cli(parse_cli({"--math", "simd"})).bank.math,
            battery::MathMode::Simd);
  // The ratio rewrite must not reset the tier.
  EXPECT_EQ(scenario_from_cli(parse_cli({"--math", "fast", "--ratio", "2.0"})).bank.math,
            battery::MathMode::Fast);
}

TEST(Cli, HelpFlag) {
  EXPECT_TRUE(parse_cli({"--help"}).show_help);
  EXPECT_TRUE(parse_cli({"-h"}).show_help);
  EXPECT_FALSE(cli_usage().empty());
}

TEST(Cli, ParsesObservabilityFlags) {
  const CliOptions o =
      parse_cli({"--metrics-out", "/tmp/m.json", "--trace-out", "/tmp/t.json",
                 "--trace-events", "1024", "--log-level", "warn"});
  EXPECT_EQ(o.metrics_path, "/tmp/m.json");
  EXPECT_EQ(o.trace_path, "/tmp/t.json");
  EXPECT_EQ(o.trace_events, 1024u);
  ASSERT_TRUE(o.log_level.has_value());
  EXPECT_EQ(*o.log_level, util::LogLevel::Warn);

  const CliOptions defaults = parse_cli({});
  EXPECT_TRUE(defaults.metrics_path.empty());
  EXPECT_TRUE(defaults.trace_path.empty());
  EXPECT_EQ(defaults.trace_events, obs::TraceBuffer::kDefaultCapacity);
  EXPECT_FALSE(defaults.log_level.has_value());
}

TEST(Cli, RejectsBadObservabilityValues) {
  EXPECT_THROW(parse_cli({"--trace-events", "0"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--trace-events", "many"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--log-level", "bogus"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--metrics-out"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--trace-out"}), util::PreconditionError);
}

TEST(Cli, RejectsBadValues) {
  EXPECT_THROW(parse_cli({"--days", "0"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--days", "ten"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--days", "1.5"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--sunshine", "1.5"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--ratio", "-2"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--days"}), util::PreconditionError);  // missing value
  EXPECT_THROW(parse_cli({"--frobnicate"}), util::PreconditionError);
}

// Regression: --seed used to round-trip through double, so any value above
// 2^53 was silently rounded to a neighbouring seed. The full uint64 range
// must survive parsing exactly.
TEST(Cli, SeedRoundTripsAbove2Pow53) {
  EXPECT_EQ(parse_cli({"--seed", "9007199254740993"}).seed,
            9007199254740993ull);  // 2^53 + 1: first casualty of the double path
  EXPECT_EQ(parse_cli({"--seed", "18446744073709551615"}).seed,
            18446744073709551615ull);  // 2^64 - 1
  EXPECT_EQ(parse_cli({"--seed", "0"}).seed, 0ull);
}

TEST(Cli, SeedRejectsNonIntegers) {
  EXPECT_THROW(parse_cli({"--seed", "abc"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--seed", "12.5"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--seed", "-1"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--seed", "+7"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--seed", ""}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--seed", "18446744073709551616"}),
               util::PreconditionError);  // 2^64: out of range
  EXPECT_THROW(parse_cli({"--seed", "7seven"}), util::PreconditionError);
}

TEST(Cli, IntegerFlagsRejectOverflowNotSilentlyWrap) {
  EXPECT_THROW(parse_cli({"--days", "99999999999999999999"}),
               util::PreconditionError);
  EXPECT_THROW(parse_cli({"--nodes", "-3"}), util::PreconditionError);
}

TEST(Cli, ParsesSweepFlags) {
  const CliOptions o =
      parse_cli({"--sweep-sunshine", "0.2,0.5,0.8", "--jobs", "4"});
  ASSERT_EQ(o.sweep_sunshine.size(), 3u);
  EXPECT_DOUBLE_EQ(o.sweep_sunshine[0], 0.2);
  EXPECT_DOUBLE_EQ(o.sweep_sunshine[1], 0.5);
  EXPECT_DOUBLE_EQ(o.sweep_sunshine[2], 0.8);
  EXPECT_EQ(o.jobs, 4u);

  const CliOptions defaults = parse_cli({});
  EXPECT_TRUE(defaults.sweep_sunshine.empty());
  EXPECT_EQ(defaults.jobs, 0u);
}

TEST(Cli, RejectsBadSweepValues) {
  EXPECT_THROW(parse_cli({"--sweep-sunshine", ""}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--sweep-sunshine", "0.2,"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--sweep-sunshine", "0.2,1.5"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--sweep-sunshine", "0.2,x"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--jobs", "0"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--jobs", "many"}), util::PreconditionError);
}

// Regression for the comma-list parser: empty items (leading, trailing or
// doubled commas) used to slip through the substr/find loop as phantom sweep
// points. They must be rejected with an error that names both the flag and
// the mistake.
TEST(Cli, CommaListRejectsEmptyItemsByName) {
  for (const char* bad : {"0.2,", ",0.2", "0.2,,0.5", ",", ",,", "0.1,0.2,"}) {
    try {
      parse_cli({"--sweep-sunshine", bad});
      FAIL() << "'" << bad << "' must be rejected";
    } catch (const util::PreconditionError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("--sweep-sunshine"), std::string::npos) << msg;
      EXPECT_NE(msg.find("comma"), std::string::npos) << msg;
    }
  }
}

// Fuzz companion to the fault-plan grammar fuzz: random comma/digit soup
// must either parse into only in-range fractions or throw PreconditionError
// — never crash, never fabricate a phantom entry.
TEST(Cli, CommaListFuzzNeverCrashesOrFabricatesEntries) {
  const std::string alphabet = "0123456789.,-+eE ";
  util::Rng rng{0xC0FFEEu};
  for (int iter = 0; iter < 500; ++iter) {
    std::string input;
    const int len = 1 + static_cast<int>(rng.uniform(0.0, 12.0));
    for (int i = 0; i < len; ++i) {
      input.push_back(
          alphabet[static_cast<std::size_t>(rng.uniform(0.0, 1.0) *
                                            static_cast<double>(alphabet.size() - 1))]);
    }
    try {
      const CliOptions o = parse_cli({"--sweep-sunshine", input});
      // Parsed: every entry is a real in-range fraction, and the entry count
      // matches the comma structure (no empty item became a point).
      ASSERT_FALSE(o.sweep_sunshine.empty()) << "'" << input << "'";
      for (double f : o.sweep_sunshine) {
        EXPECT_GE(f, 0.0) << "'" << input << "'";
        EXPECT_LE(f, 1.0) << "'" << input << "'";
      }
      const std::size_t commas =
          static_cast<std::size_t>(std::count(input.begin(), input.end(), ','));
      EXPECT_EQ(o.sweep_sunshine.size(), commas + 1) << "'" << input << "'";
    } catch (const util::PreconditionError&) {
      // Readable rejection is the other acceptable outcome.
    }
  }
}

TEST(Cli, ScenarioReflectsOptions) {
  CliOptions o;
  o.nodes = 4;
  o.seed = 99;
  o.policy = core::PolicyKind::BaatS;
  o.watts_per_ah = 10.0;
  const ScenarioConfig cfg = scenario_from_cli(o);
  EXPECT_EQ(cfg.nodes, 4u);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.policy, core::PolicyKind::BaatS);
  EXPECT_NEAR(cfg.bank.chemistry.capacity_c20.value(), 15.0, 1e-9);  // 150 W / 10
}

TEST(Cli, RunHelpReturnsZero) {
  CliOptions o;
  o.show_help = true;
  EXPECT_EQ(run_cli(o), 0);
}

TEST(Cli, EndToEndTinyRunWithCsv) {
  CliOptions o;
  o.days = 2;
  o.nodes = 3;
  o.csv_path = ::testing::TempDir() + "baatsim_cli_test.csv";
  EXPECT_EQ(run_cli(o), 0);
  std::ifstream in{o.csv_path};
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "day,weather,work,worst_ah,worst_low_soc_h,downtime_h,migrations,dvfs");
  int rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  EXPECT_EQ(rows, 2);
  std::remove(o.csv_path.c_str());
}

TEST(Cli, EndToEndTinyRunWithObservability) {
  CliOptions o;
  o.days = 2;
  o.nodes = 3;
  o.metrics_path = ::testing::TempDir() + "baatsim_cli_metrics.json";
  o.trace_path = ::testing::TempDir() + "baatsim_cli_trace.json";
  EXPECT_EQ(run_cli(o), 0);

  std::ifstream min{o.metrics_path};
  ASSERT_TRUE(min.good());
  std::stringstream mbuf;
  mbuf << min.rdbuf();
  const std::string metrics = mbuf.str();
  EXPECT_NE(metrics.find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics.find("policy.decisions{"), std::string::npos);
  EXPECT_NE(metrics.find("\"battery.low_soc_ticks\""), std::string::npos);
  EXPECT_NE(metrics.find("\"node.health{0}\""), std::string::npos);
  // --metrics-out turns profiling on, so the hot-path histograms have samples.
  EXPECT_NE(metrics.find("\"profile.cluster_run_day_ns\""), std::string::npos);

  std::ifstream tin{o.trace_path};
  ASSERT_TRUE(tin.good());
  std::stringstream tbuf;
  tbuf << tin.rdbuf();
  const std::string trace = tbuf.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"day_start\""), std::string::npos);
  EXPECT_NE(trace.find("\"day_end\""), std::string::npos);

  std::remove(o.metrics_path.c_str());
  std::remove(o.trace_path.c_str());
}

TEST(Cli, TraceOutJsonlSuffixSwitchesFormat) {
  CliOptions o;
  o.days = 1;
  o.nodes = 2;
  o.trace_path = ::testing::TempDir() + "baatsim_cli_trace.jsonl";
  o.metrics_path = ::testing::TempDir() + "baatsim_cli_metrics.csv";
  EXPECT_EQ(run_cli(o), 0);

  std::ifstream tin{o.trace_path};
  ASSERT_TRUE(tin.good());
  std::string first_line;
  std::getline(tin, first_line);
  // JSONL: every line is a bare event object, no Chrome wrapper.
  EXPECT_EQ(first_line.front(), '{');
  EXPECT_NE(first_line.find("\"kind\""), std::string::npos);
  EXPECT_EQ(first_line.find("traceEvents"), std::string::npos);

  std::ifstream min{o.metrics_path};
  ASSERT_TRUE(min.good());
  std::string header;
  std::getline(min, header);
  EXPECT_EQ(header, "type,name,field,value");

  std::remove(o.trace_path.c_str());
  std::remove(o.metrics_path.c_str());
}

TEST(Cli, ParsesShardAndDemandFlags) {
  const CliOptions o = parse_cli({"--shards", "8", "--shard-workers", "4", "--demand",
                                  "users=2000000,spread=3"});
  EXPECT_EQ(o.shards, 8u);
  EXPECT_EQ(o.shard_workers, 4u);
  EXPECT_EQ(o.demand.users, 2000000u);
  EXPECT_DOUBLE_EQ(o.demand.region_spread_hours, 3.0);
  // Defaults keep the classic engine.
  const CliOptions d = parse_cli({});
  EXPECT_EQ(d.shards, 0u);
  EXPECT_TRUE(d.demand.empty());
}

TEST(Cli, RejectsBadShardValues) {
  EXPECT_THROW(parse_cli({"--shards", "0"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--shards", "-2"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--shards", "5000"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--shards"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--shard-workers", "0"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--demand", "users=oops"}), util::PreconditionError);
  EXPECT_THROW(parse_cli({"--demand", ""}), util::PreconditionError);
}

TEST(Cli, ShardWorkersRequiresDatacenterMode) {
  try {
    parse_cli({"--shard-workers", "4"});
    FAIL() << "expected PreconditionError";
  } catch (const util::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("--shards"), std::string::npos);
  }
  // --demand alone is datacenter mode (one shard), so workers are fine.
  EXPECT_NO_THROW(parse_cli({"--demand", "users=5", "--shard-workers", "2"}));
}

TEST(Cli, DatacenterModeConflictsAreNamed) {
  EXPECT_THROW(parse_cli({"--shards", "2", "--sweep-sunshine", "0.4,0.6"}),
               util::PreconditionError);
  EXPECT_THROW(parse_cli({"--demand", "users=5", "--sweep-sunshine", "0.5"}),
               util::PreconditionError);
  EXPECT_THROW(parse_cli({"--shards", "2", "--report", "r.md"}),
               util::PreconditionError);
  // One shard renders a single cluster; --report stays available.
  EXPECT_NO_THROW(parse_cli({"--shards", "1", "--report", "r.md"}));
  EXPECT_THROW(parse_cli({"--demand", "users=5", "--demand", "users=6"}),
               util::PreconditionError);
}

TEST(Cli, UsageDocumentsDatacenterFlags) {
  const std::string usage = cli_usage();
  EXPECT_NE(usage.find("--shards"), std::string::npos);
  EXPECT_NE(usage.find("--shard-workers"), std::string::npos);
  EXPECT_NE(usage.find("--demand"), std::string::npos);
}

TEST(Cli, EndToEndShardedRunMatchesRepeatRun) {
  // The datacenter path through run_cli is deterministic end to end.
  CliOptions o;
  o.days = 2;
  o.nodes = 2;
  o.shards = 2;
  o.seed = 5;
  o.blackbox = false;
  o.demand = workload::parse_demand_spec("users=1000000");
  o.csv_path = testing::TempDir() + "dc_cli_a.csv";
  ASSERT_EQ(run_cli(o), 0);
  CliOptions o2 = o;
  o2.shard_workers = 3;
  o2.csv_path = testing::TempDir() + "dc_cli_b.csv";
  ASSERT_EQ(run_cli(o2), 0);
  std::ifstream a{o.csv_path}, b{o2.csv_path};
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_NE(sa.str().find("day,weather"), std::string::npos);
  std::remove(o.csv_path.c_str());
  std::remove(o2.csv_path.c_str());
}

}  // namespace
}  // namespace baat::sim
