#include <gtest/gtest.h>

#include "core/slowdown.hpp"

namespace baat::core {
namespace {

NodeView node_at(double soc, double ddt, double dr_c, double draw_w = 50.0,
                 double sustainable_w = 400.0) {
  NodeView n;
  n.soc = soc;
  n.metrics.ddt = ddt;
  n.metrics.dr_c_rate = dr_c;
  n.battery_draw = util::watts(draw_w);
  n.sustainable_reserve_power = util::watts(sustainable_w);
  n.dvfs_level = 3;
  n.dvfs_top = 3;
  return n;
}

TEST(Slowdown, NoActionAboveTrigger) {
  const SlowdownParams p;
  EXPECT_EQ(assess_slowdown(node_at(0.45, 0.9, 0.9), p), SlowdownDecision::None);
}

TEST(Slowdown, RestoreWellAboveTrigger) {
  const SlowdownParams p;
  EXPECT_EQ(assess_slowdown(node_at(0.60, 0.0, 0.0), p), SlowdownDecision::Restore);
}

TEST(Slowdown, BelowTriggerButCalmIsNone) {
  const SlowdownParams p;
  // Deep but idle: no DDT history, negligible drain, low C-rate.
  EXPECT_EQ(assess_slowdown(node_at(0.35, 0.0, 0.05, /*draw_w=*/5.0), p),
            SlowdownDecision::None);
}

TEST(Slowdown, ActiveDrainBelowKneeFires) {
  const SlowdownParams p;
  // Sustained battery drain below the knee arms the response even before
  // the DDT/DR statistics accumulate.
  EXPECT_EQ(assess_slowdown(node_at(0.35, 0.0, 0.05,
                                    /*draw_w=*/p.drain_watts_threshold + 10.0),
                            p),
            SlowdownDecision::Act);
}

TEST(Slowdown, DdtFiresAction) {
  const SlowdownParams p;
  EXPECT_EQ(assess_slowdown(node_at(0.35, p.ddt_threshold + 0.01, 0.0), p),
            SlowdownDecision::Act);
}

TEST(Slowdown, HighCRateFiresAction) {
  const SlowdownParams p;
  EXPECT_EQ(assess_slowdown(node_at(0.35, 0.0, p.dr_c_threshold + 0.05), p),
            SlowdownDecision::Act);
}

TEST(Slowdown, ReserveViolationFiresAction) {
  const SlowdownParams p;
  // Draw exceeds the margin on the 2-minute-sustainable power (Fig 9's
  // P_threshold check).
  EXPECT_EQ(assess_slowdown(node_at(0.35, 0.0, 0.0, 390.0, 400.0), p),
            SlowdownDecision::Act);
}

TEST(Slowdown, ZeroReserveAlwaysFiresWhenDeep) {
  const SlowdownParams p;
  EXPECT_EQ(assess_slowdown(node_at(0.35, 0.0, 0.0, 10.0, 0.0), p),
            SlowdownDecision::Act);
}

TEST(Slowdown, PlannedAgingOverridesTrigger) {
  const SlowdownParams p;
  const NodeView n = node_at(0.25, 0.5, 0.5);
  // Default knee (0.40) says act; a planned knee of 0.15 says the battery
  // may legitimately go deeper.
  EXPECT_EQ(assess_slowdown(n, p), SlowdownDecision::Act);
  EXPECT_EQ(assess_slowdown(n, p, 0.15), SlowdownDecision::None);
}

TEST(Slowdown, OverrideShiftsRecoverWithHysteresis) {
  const SlowdownParams p;
  // With a planned knee of 0.70, recover must sit above it (min +0.10).
  EXPECT_EQ(assess_slowdown(node_at(0.75, 0.0, 0.0), p, 0.70),
            SlowdownDecision::None);
  EXPECT_EQ(assess_slowdown(node_at(0.85, 0.0, 0.0), p, 0.70),
            SlowdownDecision::Restore);
}

TEST(Slowdown, ShedVmPicksLargestMigratable) {
  NodeView n = node_at(0.3, 0.5, 0.5);
  VmView small;
  small.id = 1;
  small.cores = 2.0;
  small.migratable = true;
  VmView big;
  big.id = 2;
  big.cores = 5.0;
  big.migratable = true;
  VmView pinned;
  pinned.id = 3;
  pinned.cores = 8.0;
  pinned.migratable = false;
  n.vms = {small, big, pinned};
  const auto pick = select_shed_vm(n);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->id, 2);
}

TEST(Slowdown, ShedVmNoneWhenNothingMigratable) {
  NodeView n = node_at(0.3, 0.5, 0.5);
  VmView pinned;
  pinned.id = 3;
  pinned.migratable = false;
  n.vms = {pinned};
  EXPECT_FALSE(select_shed_vm(n).has_value());
  n.vms.clear();
  EXPECT_FALSE(select_shed_vm(n).has_value());
}

}  // namespace
}  // namespace baat::core
