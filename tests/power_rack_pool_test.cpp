#include <gtest/gtest.h>

#include "power/rack_pool.hpp"
#include "util/require.hpp"

namespace baat::power {
namespace {

using util::minutes;
using util::watts;

battery::Battery pool(double soc = 1.0, double scale = 3.0) {
  return battery::Battery{battery::LeadAcidParams{}, battery::AgingParams{},
                          battery::ThermalParams{}, scale, 1.0 / scale, soc};
}

TEST(RackLayout, EvenSplitContiguous) {
  const RackLayout l = even_racks(6, 2);
  ASSERT_EQ(l.size(), 2u);
  EXPECT_EQ(l[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(l[1], (std::vector<std::size_t>{3, 4, 5}));
}

TEST(RackLayout, RemainderGoesToFrontRacks) {
  const RackLayout l = even_racks(7, 3);
  EXPECT_EQ(l[0].size(), 3u);
  EXPECT_EQ(l[1].size(), 2u);
  EXPECT_EQ(l[2].size(), 2u);
  EXPECT_THROW(even_racks(2, 3), util::PreconditionError);
}

TEST(RackPool, SolarCoversBothRacks) {
  std::vector<battery::Battery> pools{pool(0.5), pool(0.5)};
  const std::vector<util::Watts> demands{watts(50.0), watts(50.0), watts(50.0),
                                         watts(50.0), watts(50.0), watts(50.0)};
  const auto r = route_power_racked(watts(600.0), demands, even_racks(6, 2), pools,
                                    RouterParams{}, minutes(1.0));
  for (const auto& n : r.nodes) {
    EXPECT_DOUBLE_EQ(n.solar_used.value(), 50.0);
    EXPECT_DOUBLE_EQ(n.unmet.value(), 0.0);
  }
  // Surplus charges both half-full pools.
  EXPECT_GT(r.racks[0].charge_drawn.value(), 0.0);
  EXPECT_GT(r.racks[1].charge_drawn.value(), 0.0);
}

TEST(RackPool, PoolExhaustionIsRackScoped) {
  // Rack 0's pool is empty, rack 1's is healthy: only rack 0 browns out —
  // the middle ground between per-node and fleet-wide failure domains.
  std::vector<battery::Battery> pools{pool(0.0), pool(0.9)};
  const std::vector<util::Watts> demands{watts(80.0), watts(80.0), watts(80.0),
                                         watts(80.0), watts(80.0), watts(80.0)};
  const auto r = route_power_racked(watts(0.0), demands, even_racks(6, 2), pools,
                                    RouterParams{}, minutes(1.0));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(r.nodes[i].unmet.value(), 79.0) << i;
  }
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_LT(r.nodes[i].unmet.value(), 1.0) << i;
  }
}

TEST(RackPool, EnergyBalancePerNode) {
  std::vector<battery::Battery> pools{pool(0.7), pool(0.4)};
  const std::vector<util::Watts> demands{watts(120.0), watts(30.0), watts(90.0),
                                         watts(60.0), watts(150.0), watts(10.0)};
  const auto r = route_power_racked(watts(200.0), demands, even_racks(6, 2), pools,
                                    RouterParams{}, minutes(1.0));
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(r.nodes[i].demand.value(),
                r.nodes[i].solar_used.value() + r.nodes[i].utility_used.value() +
                    r.nodes[i].battery_delivered.value() + r.nodes[i].unmet.value(),
                1e-6)
        << i;
  }
}

TEST(RackPool, PoolsAlwaysStepped) {
  std::vector<battery::Battery> pools{pool(0.5), pool(0.5)};
  const std::vector<util::Watts> demands(6, watts(0.0));
  route_power_racked(watts(0.0), demands, even_racks(6, 2), pools, RouterParams{},
                     minutes(1.0));
  for (const auto& p : pools) {
    EXPECT_DOUBLE_EQ(p.counters().time_total.value(), 60.0);
  }
}

TEST(RackPool, RejectsBadLayouts) {
  std::vector<battery::Battery> pools{pool(), pool()};
  const std::vector<util::Watts> demands(6, watts(10.0));
  // Wrong pool count.
  std::vector<battery::Battery> one{pool()};
  EXPECT_THROW(route_power_racked(watts(0.0), demands, even_racks(6, 2), one,
                                  RouterParams{}, minutes(1.0)),
               util::PreconditionError);
  // Node in two racks.
  RackLayout dup{{0, 1, 2}, {2, 3, 4}};
  EXPECT_THROW(route_power_racked(watts(0.0), demands, dup, pools, RouterParams{},
                                  minutes(1.0)),
               util::PreconditionError);
  // Node missing.
  RackLayout missing{{0, 1, 2}, {3, 4}};
  EXPECT_THROW(route_power_racked(watts(0.0), demands, missing, pools,
                                  RouterParams{}, minutes(1.0)),
               util::PreconditionError);
}

}  // namespace
}  // namespace baat::power
