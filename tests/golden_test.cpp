// Golden-file regression tests: two canonical scenarios rendered to a
// deterministic document (markdown report + full-precision per-day rows)
// and compared byte-for-byte against tests/golden/*.golden.
//
// Updating the goldens after an INTENDED behavior change:
//
//   BAAT_UPDATE_GOLDEN=1 ./build/tests/golden_test
//
// then review the diff of tests/golden/ like any other code change. The
// goldens deliberately exclude the obs registry (counters accumulate across
// tests in this binary) and the wall-clock profile histograms — everything
// in them is a pure function of (scenario, seed).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "battery/bank.hpp"
#include "fault/fault.hpp"
#include "sim/cluster.hpp"
#include "sim/datacenter.hpp"
#include "sim/multiday.hpp"
#include "sim/report.hpp"
#include "util/csv.hpp"
#include "util/sim_clock.hpp"
#include "workload/demand.hpp"

#include <filesystem>

#ifndef BAAT_GOLDEN_DIR
#error "BAAT_GOLDEN_DIR must point at tests/golden"
#endif

namespace baat {
namespace {

std::string render_scenario(const sim::ScenarioConfig& cfg,
                            const std::vector<solar::DayType>& weather,
                            const std::string& title) {
  sim::Cluster cluster{cfg};
  sim::MultiDayOptions opt;
  opt.days = weather.size();
  opt.weather = weather;
  opt.probe_every_days = 2;
  const sim::MultiDayResult result = sim::run_multi_day(cluster, opt);

  std::ostringstream out;
  sim::ReportInputs inputs;
  inputs.title = title;
  inputs.config = &cfg;
  inputs.result = &result;
  inputs.cluster = &cluster;
  sim::write_report(out, inputs);

  // Full-precision per-day rows — the markdown tables round for humans;
  // these rows are the bytes that catch a 1-ulp behavior drift.
  out << "## Per-day values (full precision)\n\n";
  out << "day,weather,work,worst_ah,low_soc_h,downtime_h,migrations,dvfs\n";
  for (std::size_t d = 0; d < result.days.size(); ++d) {
    const sim::DayResult& day = result.days[d];
    out << d << "," << solar::day_type_name(day.day_type) << ","
        << util::CsvWriter::cell(day.throughput_work) << ","
        << util::CsvWriter::cell(day.nodes[day.worst_node()].ah_discharged.value())
        << "," << util::CsvWriter::cell(day.worst_low_soc_time().value() / 3600.0)
        << "," << util::CsvWriter::cell(day.total_downtime().value() / 3600.0) << ","
        << day.migrations << "," << day.dvfs_transitions << "\n";
  }
  out << "\n## Final fleet state (full precision)\n\n";
  out << "node,soc,health\n";
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    out << i << "," << util::CsvWriter::cell(cluster.batteries()[i].soc()) << ","
        << util::CsvWriter::cell(cluster.batteries()[i].health()) << "\n";
  }
  return out.str();
}

void compare_against_golden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(BAAT_GOLDEN_DIR) + "/" + name + ".golden";
  if (std::getenv("BAAT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{path, std::ios::binary};
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden updated: " << path << " — review the diff";
  }
  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — generate with BAAT_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "output drifted from " << path
      << "\nIf the change is intended, refresh with BAAT_UPDATE_GOLDEN=1 "
         "./golden_test and review the golden diff.";
}

// Canonical scenario 1: a clean sunny week on the prototype config.
TEST(Golden, SunnyCleanWeek) {
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.nodes = 3;
  cfg.policy = core::PolicyKind::Baat;
  cfg.seed = 7;
  const std::vector<solar::DayType> weather(4, solar::DayType::Sunny);
  compare_against_golden(
      "sunny_clean", render_scenario(cfg, weather, "Golden: clean sunny week"));
}

// Canonical scenario 2: cloudy weather under a representative fault plan —
// locks down the fault layer's end-to-end behavior, not just the clean path.
TEST(Golden, CloudyFaulted) {
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.nodes = 3;
  cfg.policy = core::PolicyKind::Baat;
  cfg.seed = 11;
  cfg.faults = fault::parse_fault_plan(
      "sensor_noise:soc:0.03,pv_dropout:day=1:hours=3,cell_weak:bank=2:capacity=0.8,"
      "meter_glitch:p=0.02,probe_stale:p=0.5");
  cfg.guard.enabled = true;
  const std::vector<solar::DayType> weather{
      solar::DayType::Cloudy, solar::DayType::Rainy, solar::DayType::Cloudy,
      solar::DayType::Sunny};
  compare_against_golden(
      "cloudy_faulted", render_scenario(cfg, weather, "Golden: faulted cloudy run"));
}

// Canonical scenario 3: the LFP chemistry preset under mixed weather — locks
// the Li backend's end-to-end bytes (flat-OCV SoC estimation, rainflow cycle
// aging, calendar fade) the way sunny_clean locks lead-acid's. The metrics
// rebase below mirrors scenario_from_cli's `--chemistry li_lfp` handling.
TEST(Golden, LfpMixedWeek) {
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.nodes = 3;
  cfg.policy = core::PolicyKind::Baat;
  cfg.seed = 7;
  battery::apply_chemistry_preset(cfg.bank, battery::Chemistry::LiLfp);
  cfg.metrics.nameplate = cfg.bank.chemistry.capacity_c20;
  cfg.metrics.lifetime_throughput = util::ampere_hours(
      cfg.bank.chemistry.capacity_c20.value() * cfg.bank.cycle_curve.cycles_at_full);
  cfg.policy_params.planned.total_throughput = cfg.metrics.lifetime_throughput;
  cfg.policy_params.planned.nameplate = cfg.metrics.nameplate;
  const std::vector<solar::DayType> weather{
      solar::DayType::Sunny, solar::DayType::Cloudy, solar::DayType::Sunny,
      solar::DayType::Rainy};
  compare_against_golden(
      "lfp_mixed", render_scenario(cfg, weather, "Golden: LFP mixed week"));
}

// ---------------------------------------------------------------------------
// Sharded datacenter goldens. The markdown report is single-cluster-only,
// so these render the same full-precision rows plus per-shard fleet state —
// every byte a pure function of (config, demand, weather).
// ---------------------------------------------------------------------------

std::string render_datacenter(sim::Datacenter& dc, const sim::MultiDayResult& result,
                              const std::string& title) {
  std::ostringstream out;
  out << "# " << title << "\n\n";
  out << "shards," << dc.shard_count() << "\n";
  out << "nodes_per_shard," << dc.config().scenario.nodes << "\n";
  out << "demand," << dc.config().demand.to_string() << "\n";
  out << "\n## Per-day values (full precision)\n\n";
  out << "day,weather,work,jobs,worst_ah,low_soc_h,downtime_h,migrations,dvfs\n";
  for (std::size_t d = 0; d < result.days.size(); ++d) {
    const sim::DayResult& day = result.days[d];
    out << d << "," << solar::day_type_name(day.day_type) << ","
        << util::CsvWriter::cell(day.throughput_work) << "," << day.jobs_finished << ","
        << util::CsvWriter::cell(day.nodes[day.worst_node()].ah_discharged.value())
        << "," << util::CsvWriter::cell(day.worst_low_soc_time().value() / 3600.0)
        << "," << util::CsvWriter::cell(day.total_downtime().value() / 3600.0) << ","
        << day.migrations << "," << day.dvfs_transitions << "\n";
  }
  out << "\n## Final fleet state (full precision)\n\n";
  out << "shard,node,soc,health\n";
  for (std::size_t s = 0; s < dc.shard_count(); ++s) {
    const sim::Cluster& shard = dc.shard(s);
    for (std::size_t i = 0; i < shard.node_count(); ++i) {
      out << s << "," << i << ","
          << util::CsvWriter::cell(shard.batteries()[i].soc()) << ","
          << util::CsvWriter::cell(shard.batteries()[i].health()) << "\n";
    }
  }
  return out.str();
}

sim::DatacenterConfig diurnal_datacenter_config() {
  sim::DatacenterConfig cfg;
  cfg.scenario = sim::prototype_scenario();
  cfg.scenario.nodes = 2;
  cfg.scenario.policy = core::PolicyKind::Baat;
  cfg.scenario.seed = 17;
  cfg.shards = 3;
  cfg.workers = 1;
  cfg.demand = workload::parse_demand_spec(
      "users=3000000,requests=150,peak=14,amplitude=0.6,spread=8");
  return cfg;
}

const std::vector<solar::DayType> kDatacenterWeather{
    solar::DayType::Sunny, solar::DayType::Cloudy, solar::DayType::Sunny,
    solar::DayType::Rainy, solar::DayType::Sunny};

// Canonical scenario 3: a 3-shard datacenter under diurnal demand staggered
// across regions — locks down shard keying, demand scheduling and the
// shard-ordered merge end-to-end.
TEST(Golden, ShardedDiurnalDemand) {
  sim::DatacenterConfig cfg = diurnal_datacenter_config();
  util::set_sim_time(0.0);
  sim::Datacenter dc{cfg};
  sim::MultiDayOptions opt;
  opt.days = kDatacenterWeather.size();
  opt.weather = kDatacenterWeather;
  opt.probe_every_days = 2;
  const sim::MultiDayResult result = sim::run_datacenter_multi_day(dc, opt);
  util::set_sim_time(-1.0);
  compare_against_golden(
      "sharded_diurnal",
      render_datacenter(dc, result, "Golden: 3-shard diurnal demand"));
}

// The same scenario interrupted at day 2 and resumed from the sectioned
// checkpoint must land on the exact golden bytes — checkpoint/resume is a
// bit-identical continuation, not an approximation. Compares against the
// SAME golden file as ShardedDiurnalDemand.
TEST(Golden, ShardedDiurnalDemandSurvivesCheckpointResume) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "baat_golden_dc_ckpt";
  fs::create_directories(dir);
  sim::DatacenterConfig cfg = diurnal_datacenter_config();
  cfg.workers = 2;  // resume under a different worker count on purpose

  sim::MultiDayOptions opt;
  opt.days = kDatacenterWeather.size();
  opt.weather = kDatacenterWeather;
  opt.probe_every_days = 2;
  opt.checkpoint.every_days = 2;
  opt.checkpoint.dir = dir.string();

  util::set_sim_time(0.0);
  {
    sim::Datacenter first{cfg};
    (void)sim::run_datacenter_multi_day(first, opt);
  }

  util::set_sim_time(0.0);
  sim::Datacenter resumed{cfg};
  sim::MultiDayOptions ropt = opt;
  ropt.checkpoint.every_days = 0;
  ropt.checkpoint.resume_path = (dir / "checkpoint-day-2.snap").string();
  const sim::MultiDayResult result = sim::run_datacenter_multi_day(resumed, ropt);
  util::set_sim_time(-1.0);
  fs::remove_all(dir);

  // Only days 2..4 re-ran, so splice the resumed tail onto the golden head
  // by re-rendering: per-day rows 0..1 come from the checkpointed result.
  ASSERT_EQ(result.days.size(), kDatacenterWeather.size());
  compare_against_golden(
      "sharded_diurnal",
      render_datacenter(resumed, result, "Golden: 3-shard diurnal demand"));
}

// Canonical scenario 4: a flash crowd slamming every region at once, on top
// of faults — the stress case for demand-driven scheduling under duress.
TEST(Golden, ShardedFlashCrowdFaulted) {
  sim::DatacenterConfig cfg;
  cfg.scenario = sim::prototype_scenario();
  cfg.scenario.nodes = 2;
  cfg.scenario.policy = core::PolicyKind::Baat;
  cfg.scenario.seed = 23;
  cfg.scenario.faults = fault::parse_fault_plan(
      "sensor_noise:soc:0.03,pv_dropout:day=1:hours=3,meter_glitch:p=0.02");
  cfg.scenario.guard.enabled = true;
  cfg.shards = 2;
  cfg.workers = 1;
  cfg.demand = workload::parse_demand_spec(
      "users=2000000,requests=200,peak=13,amplitude=0.5,"
      "flash:day=1:mult=5:hour=12:hours=2");
  util::set_sim_time(0.0);
  sim::Datacenter dc{cfg};
  sim::MultiDayOptions opt;
  opt.days = 3;
  opt.weather = {solar::DayType::Sunny, solar::DayType::Cloudy, solar::DayType::Sunny};
  opt.probe_every_days = 0;
  const sim::MultiDayResult result = sim::run_datacenter_multi_day(dc, opt);
  util::set_sim_time(-1.0);
  compare_against_golden(
      "sharded_flash_crowd",
      render_datacenter(dc, result, "Golden: 2-shard flash crowd under faults"));
}

}  // namespace
}  // namespace baat
