// Golden-file regression tests: two canonical scenarios rendered to a
// deterministic document (markdown report + full-precision per-day rows)
// and compared byte-for-byte against tests/golden/*.golden.
//
// Updating the goldens after an INTENDED behavior change:
//
//   BAAT_UPDATE_GOLDEN=1 ./build/tests/golden_test
//
// then review the diff of tests/golden/ like any other code change. The
// goldens deliberately exclude the obs registry (counters accumulate across
// tests in this binary) and the wall-clock profile histograms — everything
// in them is a pure function of (scenario, seed).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "fault/fault.hpp"
#include "sim/cluster.hpp"
#include "sim/multiday.hpp"
#include "sim/report.hpp"
#include "util/csv.hpp"

#ifndef BAAT_GOLDEN_DIR
#error "BAAT_GOLDEN_DIR must point at tests/golden"
#endif

namespace baat {
namespace {

std::string render_scenario(const sim::ScenarioConfig& cfg,
                            const std::vector<solar::DayType>& weather,
                            const std::string& title) {
  sim::Cluster cluster{cfg};
  sim::MultiDayOptions opt;
  opt.days = weather.size();
  opt.weather = weather;
  opt.probe_every_days = 2;
  const sim::MultiDayResult result = sim::run_multi_day(cluster, opt);

  std::ostringstream out;
  sim::ReportInputs inputs;
  inputs.title = title;
  inputs.config = &cfg;
  inputs.result = &result;
  inputs.cluster = &cluster;
  sim::write_report(out, inputs);

  // Full-precision per-day rows — the markdown tables round for humans;
  // these rows are the bytes that catch a 1-ulp behavior drift.
  out << "## Per-day values (full precision)\n\n";
  out << "day,weather,work,worst_ah,low_soc_h,downtime_h,migrations,dvfs\n";
  for (std::size_t d = 0; d < result.days.size(); ++d) {
    const sim::DayResult& day = result.days[d];
    out << d << "," << solar::day_type_name(day.day_type) << ","
        << util::CsvWriter::cell(day.throughput_work) << ","
        << util::CsvWriter::cell(day.nodes[day.worst_node()].ah_discharged.value())
        << "," << util::CsvWriter::cell(day.worst_low_soc_time().value() / 3600.0)
        << "," << util::CsvWriter::cell(day.total_downtime().value() / 3600.0) << ","
        << day.migrations << "," << day.dvfs_transitions << "\n";
  }
  out << "\n## Final fleet state (full precision)\n\n";
  out << "node,soc,health\n";
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    out << i << "," << util::CsvWriter::cell(cluster.batteries()[i].soc()) << ","
        << util::CsvWriter::cell(cluster.batteries()[i].health()) << "\n";
  }
  return out.str();
}

void compare_against_golden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(BAAT_GOLDEN_DIR) + "/" + name + ".golden";
  if (std::getenv("BAAT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{path, std::ios::binary};
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden updated: " << path << " — review the diff";
  }
  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — generate with BAAT_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "output drifted from " << path
      << "\nIf the change is intended, refresh with BAAT_UPDATE_GOLDEN=1 "
         "./golden_test and review the golden diff.";
}

// Canonical scenario 1: a clean sunny week on the prototype config.
TEST(Golden, SunnyCleanWeek) {
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.nodes = 3;
  cfg.policy = core::PolicyKind::Baat;
  cfg.seed = 7;
  const std::vector<solar::DayType> weather(4, solar::DayType::Sunny);
  compare_against_golden(
      "sunny_clean", render_scenario(cfg, weather, "Golden: clean sunny week"));
}

// Canonical scenario 2: cloudy weather under a representative fault plan —
// locks down the fault layer's end-to-end behavior, not just the clean path.
TEST(Golden, CloudyFaulted) {
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.nodes = 3;
  cfg.policy = core::PolicyKind::Baat;
  cfg.seed = 11;
  cfg.faults = fault::parse_fault_plan(
      "sensor_noise:soc:0.03,pv_dropout:day=1:hours=3,cell_weak:bank=2:capacity=0.8,"
      "meter_glitch:p=0.02,probe_stale:p=0.5");
  cfg.guard.enabled = true;
  const std::vector<solar::DayType> weather{
      solar::DayType::Cloudy, solar::DayType::Rainy, solar::DayType::Cloudy,
      solar::DayType::Sunny};
  compare_against_golden(
      "cloudy_faulted", render_scenario(cfg, weather, "Golden: faulted cloudy run"));
}

}  // namespace
}  // namespace baat
