#include <gtest/gtest.h>

#include "server/server.hpp"
#include "util/require.hpp"

namespace baat::server {
namespace {

using util::watts;

Server fresh() { return Server{ServerSpec{}}; }

TEST(Dvfs, LadderBasics) {
  const DvfsLadder l;
  EXPECT_EQ(l.levels(), 4);
  EXPECT_EQ(l.top(), 3);
  EXPECT_DOUBLE_EQ(l.factor(3), 1.0);
  EXPECT_LT(l.factor(0), l.factor(3));
  EXPECT_THROW(l.factor(4), util::PreconditionError);
  EXPECT_THROW(l.factor(-1), util::PreconditionError);
}

TEST(Server, StartsAtTopFrequencyPoweredOn) {
  Server s = fresh();
  EXPECT_TRUE(s.powered_on());
  EXPECT_EQ(s.dvfs_level(), s.spec().dvfs.top());
  EXPECT_DOUBLE_EQ(s.freq_factor(), 1.0);
}

TEST(Server, PowerModelAtNominalFrequency) {
  Server s = fresh();
  EXPECT_DOUBLE_EQ(s.power(0.0).value(), s.spec().idle.value());
  EXPECT_DOUBLE_EQ(s.power(1.0).value(), s.spec().peak.value());
  EXPECT_DOUBLE_EQ(s.power(0.5).value(),
                   s.spec().idle.value() + 0.5 * (s.spec().peak - s.spec().idle).value());
}

TEST(Server, DvfsReducesPower) {
  Server s = fresh();
  const double p_full = s.power(0.8).value();
  s.set_dvfs_level(0);
  const double p_slow = s.power(0.8).value();
  EXPECT_LT(p_slow, p_full);
  // Idle also shrinks: idle·(0.6 + 0.4·0.5) = 0.8·idle at the lowest level.
  EXPECT_DOUBLE_EQ(s.power(0.0).value(), s.spec().idle.value() * 0.8);
}

TEST(Server, PowerZeroWhenOff) {
  Server s = fresh();
  s.power_off();
  EXPECT_DOUBLE_EQ(s.power(1.0).value(), 0.0);
  s.power_on();
  EXPECT_GT(s.power(0.0).value(), 0.0);
}

TEST(Server, VmAttachDetachTracksCapacity) {
  Server s = fresh();
  EXPECT_DOUBLE_EQ(s.cores_free(), 8.0);
  s.attach(1, 4.0, 8.0);
  s.attach(2, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(s.cores_free(), 2.0);
  EXPECT_DOUBLE_EQ(s.mem_free_gb(), 4.0);
  EXPECT_TRUE(s.hosts(1));
  s.detach(1);
  EXPECT_FALSE(s.hosts(1));
  EXPECT_DOUBLE_EQ(s.cores_free(), 6.0);
}

TEST(Server, CannotOverSubscribe) {
  Server s = fresh();
  s.attach(1, 6.0, 8.0);
  EXPECT_FALSE(s.can_host(4.0, 4.0));
  EXPECT_THROW(s.attach(2, 4.0, 4.0), util::PreconditionError);
  EXPECT_FALSE(s.can_host(1.0, 16.0));  // memory bound
}

TEST(Server, OffServerCannotHost) {
  Server s = fresh();
  s.power_off();
  EXPECT_FALSE(s.can_host(1.0, 1.0));
}

TEST(Server, DuplicateAttachAndMissingDetachRejected) {
  Server s = fresh();
  s.attach(1, 1.0, 1.0);
  EXPECT_THROW(s.attach(1, 1.0, 1.0), util::PreconditionError);
  EXPECT_THROW(s.detach(9), util::PreconditionError);
  EXPECT_THROW(s.set_demand(9, 0.5), util::PreconditionError);
}

TEST(Server, AggregateDemandWeightsByCores) {
  Server s = fresh();
  s.attach(1, 4.0, 4.0);
  s.attach(2, 2.0, 2.0);
  s.set_demand(1, 1.0);   // 4 cores fully busy
  s.set_demand(2, 0.5);   // 1 core busy
  EXPECT_DOUBLE_EQ(s.total_demand_util(), 5.0 / 8.0);
}

TEST(Server, AggregateDemandClampsAtOne) {
  ServerSpec spec;
  spec.cores = 2.0;
  Server s{spec};
  s.attach(1, 2.0, 4.0);
  s.set_demand(1, 1.0);
  EXPECT_DOUBLE_EQ(s.total_demand_util(), 1.0);
}

TEST(Server, DowntimeAccumulates) {
  Server s = fresh();
  s.add_downtime(util::minutes(5.0));
  s.add_downtime(util::minutes(3.0));
  EXPECT_DOUBLE_EQ(s.downtime().value(), 480.0);
}

TEST(Server, RejectsBadSpec) {
  ServerSpec inverted;
  inverted.idle = watts(200.0);
  inverted.peak = watts(100.0);
  EXPECT_THROW(Server{inverted}, util::PreconditionError);
  ServerSpec unsorted;
  unsorted.dvfs.freq_factors = {1.0, 0.5};
  EXPECT_THROW(Server{unsorted}, util::PreconditionError);
}

TEST(Server, RejectsBadArguments) {
  Server s = fresh();
  EXPECT_THROW(s.power(1.5), util::PreconditionError);
  EXPECT_THROW(s.set_dvfs_level(17), util::PreconditionError);
  s.attach(1, 1.0, 1.0);
  EXPECT_THROW(s.set_demand(1, -0.1), util::PreconditionError);
}

}  // namespace
}  // namespace baat::server
