// Cross-module integration tests: the paper's qualitative claims must hold
// end-to-end on the digital twin. These are the "shape" checks backing the
// EXPERIMENTS.md results — each maps to a section of the evaluation.

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace baat::sim {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  ScenarioConfig cfg_ = prototype_scenario();
};

// §VI-A: batteries yield less Ah-throughput on sunny days; CF is higher and
// the battery sits at higher SoC (PC healthier) than on rainy days.
TEST_F(IntegrationTest, WeatherOrdersAgingMetrics) {
  Cluster sunny_c{cfg_};
  const DayResult sunny = sunny_c.run_day(solar::DayType::Sunny);
  Cluster rainy_c{cfg_};
  const DayResult rainy = rainy_c.run_day(solar::DayType::Rainy);

  const auto& s = sunny.nodes[sunny.worst_node()].metrics_day;
  const auto& r = rainy.nodes[rainy.worst_node()].metrics_day;
  EXPECT_LT(s.nat, r.nat);             // less throughput in sun
  EXPECT_GT(s.cf, r.cf);               // recharged more fully
  EXPECT_GT(s.pc_health, r.pc_health); // output at higher SoC
  EXPECT_LT(s.ddt, r.ddt);             // less deep-discharge time
}

// Shared two-week run for the cumulative §VI-B / §VI-E comparisons: single
// days are too noisy for per-day claims, the paper itself averages.
struct TwoWeekStats {
  double worst_ah = 0.0;
  double worst_critical_soc_s = 0.0;
};

TwoWeekStats run_two_weeks(const ScenarioConfig& base, core::PolicyKind policy) {
  ScenarioConfig cfg = base;
  cfg.policy = policy;
  Cluster cluster{cfg};
  MultiDayOptions opts;
  opts.days = 14;
  opts.weather = mixed_weather(opts.days, 2, 3, 2);
  opts.probe_every_days = 0;
  const MultiDayResult run = run_multi_day(cluster, opts);
  std::vector<double> ah(cluster.node_count(), 0.0);
  std::vector<double> critical(cluster.node_count(), 0.0);
  for (const DayResult& d : run.days) {
    for (std::size_t i = 0; i < d.nodes.size(); ++i) {
      ah[i] += d.nodes[i].ah_discharged.value();
      critical[i] += d.nodes[i].critical_soc_time.value();
    }
  }
  TwoWeekStats s;
  for (std::size_t i = 0; i < ah.size(); ++i) {
    s.worst_ah = std::max(s.worst_ah, ah[i]);
    s.worst_critical_soc_s = std::max(s.worst_critical_soc_s, critical[i]);
  }
  return s;
}

// §VI-B: e-Buff cycles the worst battery harder than BAAT.
TEST_F(IntegrationTest, BaatReducesWorstNodeThroughput) {
  const TwoWeekStats ebuff = run_two_weeks(cfg_, core::PolicyKind::EBuff);
  const TwoWeekStats baat = run_two_weeks(cfg_, core::PolicyKind::Baat);
  EXPECT_LT(baat.worst_ah, ebuff.worst_ah);
}

// §VI-E: BAAT cuts the worst node's exposure to the critical SoC band,
// where a power spike means a single point of failure.
TEST_F(IntegrationTest, BaatReducesCriticalSocDuration) {
  const TwoWeekStats ebuff = run_two_weeks(cfg_, core::PolicyKind::EBuff);
  const TwoWeekStats baat = run_two_weeks(cfg_, core::PolicyKind::Baat);
  EXPECT_LT(baat.worst_critical_soc_s, ebuff.worst_critical_soc_s);
}

// §VI-C: over a multi-week horizon, BAAT's worst battery outlives e-Buff's.
TEST_F(IntegrationTest, BaatExtendsWorstNodeLifetime) {
  const LifetimeSummary ebuff = estimate_lifetime(cfg_, core::PolicyKind::EBuff, 0.4, 30);
  const LifetimeSummary baat = estimate_lifetime(cfg_, core::PolicyKind::Baat, 0.4, 30);
  EXPECT_GT(baat.lifetime_days, 1.1 * ebuff.lifetime_days);
}

// §VI-C Fig 14: lifetime grows with solar availability under every policy.
TEST_F(IntegrationTest, SunshineExtendsLifetime) {
  const LifetimeSummary dark = estimate_lifetime(cfg_, core::PolicyKind::EBuff, 0.2, 20);
  const LifetimeSummary bright = estimate_lifetime(cfg_, core::PolicyKind::EBuff, 0.9, 20);
  EXPECT_GT(bright.lifetime_days, dark.lifetime_days);
}

// §VI-C Fig 15: heavier server-to-battery ratio accelerates aging.
TEST_F(IntegrationTest, HeavierRatioShortensLifetime) {
  const auto light = with_server_battery_ratio(cfg_, 3.0);
  const auto heavy = with_server_battery_ratio(cfg_, 10.0);
  const LifetimeSummary l = estimate_lifetime(light, core::PolicyKind::EBuff, 0.5, 20);
  const LifetimeSummary h = estimate_lifetime(heavy, core::PolicyKind::EBuff, 0.5, 20);
  EXPECT_GT(l.lifetime_days, h.lifetime_days);
}

// §VI-B: hiding shrinks the health spread across the fleet.
TEST_F(IntegrationTest, BaatHidesAgingVariation) {
  auto spread = [&](core::PolicyKind p) {
    ScenarioConfig cfg = cfg_;
    cfg.policy = p;
    Cluster c{cfg};
    MultiDayOptions opts;
    opts.days = 25;
    opts.weather = mixed_weather(25, 3, 2, 1);
    opts.probe_every_days = 0;
    opts.keep_days = false;
    run_multi_day(c, opts);
    double lo = 1.0;
    double hi = 0.0;
    for (const auto& b : c.batteries()) {
      lo = std::min(lo, b.health());
      hi = std::max(hi, b.health());
    }
    return hi - lo;
  };
  EXPECT_LT(spread(core::PolicyKind::Baat), spread(core::PolicyKind::EBuff));
}

// §VI-F: on an old fleet under cloudy supply, BAAT's throughput is at least
// competitive with e-Buff (the paper reports +28% in that worst case).
TEST_F(IntegrationTest, OldFleetCloudyThroughput) {
  const solar::SolarDay day{cfg_.plant, solar::DayType::Cloudy, util::Rng{5}};
  auto run_old = [&](core::PolicyKind p) {
    ScenarioConfig cfg = cfg_;
    cfg.policy = p;
    Cluster c{cfg};
    seed_aged_fleet(c, six_month_aged_state());
    return c.run_day(day);
  };
  const DayResult ebuff = run_old(core::PolicyKind::EBuff);
  const DayResult baat = run_old(core::PolicyKind::Baat);
  EXPECT_GT(baat.throughput_work, 0.85 * ebuff.throughput_work);
}

// §VI-G: planned aging with an aggressive plan must not *reduce* throughput
// relative to conservative BAAT on a constrained day.
TEST_F(IntegrationTest, PlannedAgingUnlocksThroughput) {
  const solar::SolarDay day{cfg_.plant, solar::DayType::Cloudy, util::Rng{5}};
  ScenarioConfig planned_cfg = cfg_;
  planned_cfg.policy_params.planned.cycles_plan = 400.0;
  auto run_old = [&](const ScenarioConfig& cfg, core::PolicyKind p) {
    ScenarioConfig local = cfg;
    local.policy = p;
    Cluster c{local};
    seed_aged_fleet(c, six_month_aged_state());
    return c.run_day(day);
  };
  const DayResult baat = run_old(cfg_, core::PolicyKind::Baat);
  const DayResult planned = run_old(planned_cfg, core::PolicyKind::BaatPlanned);
  EXPECT_GE(planned.throughput_work, 0.98 * baat.throughput_work);
}

// Figs 3-5 shape: monthly probes degrade monotonically-ish over months of
// aggressive use — voltage, capacity and efficiency all end lower.
TEST_F(IntegrationTest, ProbesDegradeOverMonths) {
  Cluster c{cfg_};
  MultiDayOptions opts;
  opts.days = 40;
  opts.weather = mixed_weather(40, 1, 2, 1);  // aggressive mix
  opts.probe_every_days = 10;
  opts.keep_days = false;
  const MultiDayResult r = run_multi_day(c, opts);
  ASSERT_GE(r.monthly.size(), 3u);
  const auto& first = r.monthly.front();
  const auto& last = r.monthly.back();
  EXPECT_LT(last.full_voltage, first.full_voltage);
  EXPECT_LT(last.capacity_fraction, first.capacity_fraction);
  EXPECT_LE(last.round_trip_efficiency, first.round_trip_efficiency + 1e-6);
}

// Sanity: total work is conserved across policies within a sane band — no
// policy should collapse throughput on a young fleet.
TEST_F(IntegrationTest, YoungFleetThroughputBand) {
  const solar::SolarDay day{cfg_.plant, solar::DayType::Sunny, util::Rng{5}};
  const DayResult ebuff = run_matched_day(cfg_, core::PolicyKind::EBuff, day);
  for (core::PolicyKind p : {core::PolicyKind::BaatS, core::PolicyKind::BaatH,
                             core::PolicyKind::Baat}) {
    const DayResult r = run_matched_day(cfg_, p, day);
    EXPECT_GT(r.throughput_work, 0.8 * ebuff.throughput_work);
  }
}

}  // namespace
}  // namespace baat::sim
