// Fuzz/negative battery for the --demand spec parser plus semantic checks
// on the request-level demand model (mirrors the --faults parser tests:
// every rejection must throw util::PreconditionError with a message naming
// the offending item, never crash or silently accept).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/require.hpp"
#include "workload/demand.hpp"

namespace baat::workload {
namespace {

TEST(DemandParse, FullSpecRoundTripsThroughCanonicalForm) {
  const DemandModel m = parse_demand_spec(
      "users=2000000,requests=150,peak=14,amplitude=0.6,spread=3,cap=32,"
      "flash:day=5:mult=4:hour=12:hours=2");
  EXPECT_EQ(m.users, 2000000u);
  EXPECT_DOUBLE_EQ(m.requests_per_user, 150.0);
  EXPECT_DOUBLE_EQ(m.peak_hour, 14.0);
  EXPECT_DOUBLE_EQ(m.amplitude, 0.6);
  EXPECT_DOUBLE_EQ(m.region_spread_hours, 3.0);
  EXPECT_EQ(m.max_jobs, 32u);
  ASSERT_EQ(m.flashes.size(), 1u);
  EXPECT_EQ(m.flashes[0].day, 5);
  EXPECT_DOUBLE_EQ(m.flashes[0].mult, 4.0);
  EXPECT_DOUBLE_EQ(m.flashes[0].hour, 12.0);
  EXPECT_DOUBLE_EQ(m.flashes[0].hours, 2.0);
  // Canonical form re-parses to the same canonical form (fixed point).
  const std::string canon = m.to_string();
  EXPECT_EQ(parse_demand_spec(canon).to_string(), canon);
}

TEST(DemandParse, UsersAloneGetsDefaults) {
  const DemandModel m = parse_demand_spec("users=1000000");
  EXPECT_FALSE(m.empty());
  EXPECT_DOUBLE_EQ(m.requests_per_user, 150.0);
  EXPECT_DOUBLE_EQ(m.amplitude, 0.6);
  EXPECT_TRUE(m.flashes.empty());
}

TEST(DemandParse, MissingUsersIsRejected) {
  try {
    parse_demand_spec("requests=100,peak=10");
    FAIL() << "expected PreconditionError";
  } catch (const util::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("users="), std::string::npos);
  }
}

TEST(DemandParse, RejectsEmptyAndStrayCommaSpecs) {
  EXPECT_THROW(parse_demand_spec(""), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec(","), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec(",users=5"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,,peak=3"), util::PreconditionError);
}

TEST(DemandParse, RejectsGarbageTokens) {
  EXPECT_THROW(parse_demand_spec("garbage"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("=5"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,=3"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,peak"), util::PreconditionError);
}

TEST(DemandParse, UnknownFieldNamesTheField) {
  try {
    parse_demand_spec("users=5,bogus=1");
    FAIL() << "expected PreconditionError";
  } catch (const util::PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown field"), std::string::npos);
    EXPECT_NE(msg.find("bogus"), std::string::npos);
  }
}

TEST(DemandParse, DuplicateFieldsAreRejected) {
  EXPECT_THROW(parse_demand_spec("users=5,users=6"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,peak=1,peak=2"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,flash:day=1:mult=2:day=3"),
               util::PreconditionError);
}

TEST(DemandParse, UsersRangeAndIntegrality) {
  EXPECT_THROW(parse_demand_spec("users=0"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=-1"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=1.5"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=1e11"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=nan"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=inf"), util::PreconditionError);
  EXPECT_EQ(parse_demand_spec("users=1e10").users, 10000000000u);
}

TEST(DemandParse, NonNumericValuesNameTheFieldAndValue) {
  try {
    parse_demand_spec("users=lots");
    FAIL() << "expected PreconditionError";
  } catch (const util::PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("users"), std::string::npos);
    EXPECT_NE(msg.find("'lots'"), std::string::npos);
  }
  EXPECT_THROW(parse_demand_spec("users=5x"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,peak=12noon"), util::PreconditionError);
}

TEST(DemandParse, FieldRangesAreEnforced) {
  EXPECT_THROW(parse_demand_spec("users=5,requests=0"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,requests=1e7"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,peak=24"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,peak=-0.1"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,amplitude=1.01"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,amplitude=-0.2"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,spread=25"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,cap=0"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,cap=2.5"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,cap=5000"), util::PreconditionError);
}

TEST(DemandParse, FlashValidation) {
  // Required fields.
  EXPECT_THROW(parse_demand_spec("users=5,flash"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,flash:day=1"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,flash:mult=2"), util::PreconditionError);
  // Ranges.
  EXPECT_THROW(parse_demand_spec("users=5,flash:day=-1:mult=2"),
               util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,flash:day=1:mult=1"),
               util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,flash:day=1:mult=1001"),
               util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,flash:day=1:mult=2:hour=24"),
               util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,flash:day=1:mult=2:hours=0"),
               util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,flash:day=1:mult=2:hours=25"),
               util::PreconditionError);
  // Unknown / malformed flash fields.
  EXPECT_THROW(parse_demand_spec("users=5,flash:day=1:mult=2:oops=3"),
               util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,flash:day=1:mult"), util::PreconditionError);
  // A field merely *starting* with "flash" is not a flash item.
  EXPECT_THROW(parse_demand_spec("users=5,flashy=1"), util::PreconditionError);
}

TEST(DemandParse, MultipleFlashesAccumulateInOrder) {
  const DemandModel m = parse_demand_spec(
      "users=5,flash:day=1:mult=2,flash:day=3:mult=5:hour=6:hours=1");
  ASSERT_EQ(m.flashes.size(), 2u);
  EXPECT_EQ(m.flashes[0].day, 1);
  EXPECT_EQ(m.flashes[1].day, 3);
  EXPECT_DOUBLE_EQ(m.flashes[1].hour, 6.0);
}

TEST(DemandParse, HostileInputsFailCleanlyNotCrash) {
  const std::string long_key(10000, 'a');
  EXPECT_THROW(parse_demand_spec(long_key + "=1"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,pe\tak=3"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users=5,peak=\x01\x02"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec("users==5"), util::PreconditionError);
  EXPECT_THROW(parse_demand_spec(std::string("users=5,") + std::string(4096, ',')),
               util::PreconditionError);
}

TEST(DemandModelTest, EmptyModelProducesNoJobs) {
  const DemandModel m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.shard_day_jobs(0, 1, 0).empty());
  EXPECT_EQ(m.to_string(), "");
}

TEST(DemandModelTest, IntensityHasUnitMeanOverTheDay) {
  const DemandModel m = parse_demand_spec("users=5,amplitude=0.8,peak=9");
  double sum = 0.0;
  const int steps = 9600;
  for (int g = 0; g < steps; ++g) {
    sum += m.intensity(0, 1, 0, 24.0 * (g + 0.5) / steps);
  }
  EXPECT_NEAR(sum / steps, 1.0, 1e-6);
}

TEST(DemandModelTest, ZeroAmplitudeIsFlat) {
  const DemandModel m = parse_demand_spec("users=5,amplitude=0");
  EXPECT_DOUBLE_EQ(m.intensity(0, 1, 0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(m.intensity(0, 1, 0, 17.5), 1.0);
}

TEST(DemandModelTest, FlashMultipliesOnlyInsideItsWindow) {
  const DemandModel m =
      parse_demand_spec("users=5,amplitude=0,flash:day=2:mult=10:hour=12:hours=2");
  EXPECT_DOUBLE_EQ(m.intensity(0, 1, 2, 13.0), 10.0);
  EXPECT_DOUBLE_EQ(m.intensity(0, 1, 2, 11.9), 1.0);
  EXPECT_DOUBLE_EQ(m.intensity(0, 1, 2, 14.0), 1.0);  // half-open window
  EXPECT_DOUBLE_EQ(m.intensity(0, 1, 3, 13.0), 1.0);  // wrong day
}

TEST(DemandModelTest, SpreadStaggersShardPeaks) {
  const DemandModel m = parse_demand_spec("users=5,amplitude=1,peak=12,spread=12");
  // Shard 0 peaks at 12:00; shard 2 of 4 runs 6h ahead, so its local noon
  // is datacenter 06:00.
  EXPECT_NEAR(m.intensity(0, 4, 0, 12.0), 2.0, 1e-12);
  EXPECT_NEAR(m.intensity(2, 4, 0, 6.0), 2.0, 1e-12);
  EXPECT_LT(m.intensity(2, 4, 0, 12.0), 2.0);
}

TEST(DemandModelTest, JobCountScalesWithUsersAndHonoursCap) {
  const DemandModel small = parse_demand_spec("users=500000");
  const DemandModel big = parse_demand_spec("users=8000000");
  const DemandModel capped = parse_demand_spec("users=8000000,cap=3");
  const std::size_t n_small = small.shard_day_jobs(0, 1, 0).size();
  const std::size_t n_big = big.shard_day_jobs(0, 1, 0).size();
  EXPECT_LT(n_small, n_big);
  EXPECT_GE(n_small, 1u);  // never zero jobs — servers idle, not absent
  EXPECT_EQ(capped.shard_day_jobs(0, 1, 0).size(), 3u);
}

TEST(DemandModelTest, ShardingDividesThePopulation) {
  const DemandModel m = parse_demand_spec("users=8000000,amplitude=0");
  const std::size_t whole = m.shard_day_jobs(0, 1, 0).size();
  const std::size_t quarter = m.shard_day_jobs(0, 4, 0).size();
  EXPECT_NEAR(static_cast<double>(whole) / 4.0, static_cast<double>(quarter), 1.0);
}

TEST(DemandModelTest, ArrivalsAreSortedAndInDayRange) {
  const DemandModel m = parse_demand_spec(
      "users=6000000,amplitude=0.9,peak=15,flash:day=0:mult=6:hour=10:hours=1");
  const std::vector<DemandJob> jobs = m.shard_day_jobs(0, 1, 0);
  ASSERT_FALSE(jobs.empty());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_GE(jobs[k].start_frac, 0.0);
    EXPECT_LT(jobs[k].start_frac, 1.0);
    if (k > 0) EXPECT_GE(jobs[k].start_frac, jobs[k - 1].start_frac);
  }
}

TEST(DemandModelTest, ArrivalsBunchAroundTheFlashWindow) {
  const DemandModel m =
      parse_demand_spec("users=4000000,amplitude=0,flash:day=0:mult=50:hour=12:hours=2");
  const std::vector<DemandJob> jobs = m.shard_day_jobs(0, 1, 0);
  const std::size_t inside =
      static_cast<std::size_t>(std::count_if(jobs.begin(), jobs.end(), [](const DemandJob& j) {
        const double hour = j.start_frac * 24.0;
        return hour >= 12.0 && hour < 14.0;
      }));
  // 2 of 24 hours carry 50x intensity → the bulk of arrivals land inside.
  EXPECT_GT(inside * 2, jobs.size());
}

TEST(DemandModelTest, PureFunctionOfInputs) {
  const DemandModel m = parse_demand_spec("users=3000000,amplitude=0.5,spread=4");
  const std::vector<DemandJob> a = m.shard_day_jobs(2, 4, 7);
  const std::vector<DemandJob> b = m.shard_day_jobs(2, 4, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].kind, b[k].kind);
    EXPECT_DOUBLE_EQ(a[k].start_frac, b[k].start_frac);
  }
  // Different day / shard mixes the job kinds.
  const std::vector<DemandJob> c = m.shard_day_jobs(2, 4, 8);
  ASSERT_FALSE(c.empty());
}

TEST(DemandModelTest, ShardIndexValidated) {
  const DemandModel m = parse_demand_spec("users=5");
  EXPECT_THROW(m.shard_day_jobs(4, 4, 0), util::PreconditionError);
  EXPECT_THROW(m.intensity(1, 1, 0, 12.0), util::PreconditionError);
}

}  // namespace
}  // namespace baat::workload
