// Regression tests for the fastmath edge-case contract (util/fastmath.hpp)
// and per-lane bit agreement of the lane-batched forms (util/simd.hpp).
//
// This TU is compiled with the same SIMD arch flags as the kernel TU
// (tests/CMakeLists.txt mirrors BAAT_SIMD_TU_FLAGS), so under the default
// build the Pack<4>/Pack<8> assertions exercise the AVX2 overloads the
// simd tier actually runs with; under BAAT_SIMD=OFF (or off x86) the same
// assertions pin the portable lane loops. Pack<2> has no intrinsic form
// anywhere, so it pins the generic templates in every configuration.
//
// The scalar edge-case contract under test is documented at the top of
// util/fastmath.hpp; the per-lane agreement contract ("the lane-batched
// counterparts evaluate the identical operation sequence and are
// bit-identical per lane") is what lets MathMode::Simd reuse the fast
// tier's tolerance analysis unchanged.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/fastmath.hpp"
#include "util/simd.hpp"

namespace baat::util {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDblMin = std::numeric_limits<double>::min();        // 0x1p-1022
constexpr double kTrueMin = std::numeric_limits<double>::denorm_min();  // 0x1p-1074

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// --- scalar fast_exp2 edge cases -------------------------------------------

TEST(FastExp2Edges, DblMinBoundaryIsExact) {
  // The old `!(x > -1022.0)` guard flushed the boundary itself to zero;
  // -1022 is an integer input, so the polynomial contributes exactly 1.0
  // and the result must be DBL_MIN to the bit.
  EXPECT_EQ(bits(fast_exp2(-1022.0)), bits(0x1p-1022));
  EXPECT_EQ(fast_exp2(-1022.0), std::exp2(-1022.0));
}

TEST(FastExp2Edges, IntegerInputsArePowersOfTwoExactly) {
  // Horner at f = 0 yields the trailing coefficient 1.0 exactly, so every
  // integer input maps to the assembled 2^n scale with no rounding —
  // across the normal range and into the subnormal range.
  for (const int n : {-1074, -1073, -1060, -1023, -1022, -1021, -512, -1, 0,
                      1, 512, 1023}) {
    EXPECT_EQ(bits(fast_exp2(static_cast<double>(n))), bits(std::exp2(n)))
        << "n = " << n;
  }
}

TEST(FastExp2Edges, GradualUnderflowThroughSubnormals) {
  // x in (-1074, -1022) must land in the subnormal range (0 < r < DBL_MIN),
  // not flush to zero. The product p * 2^n rounds at subnormal granularity,
  // so allow a few quanta on top of the polynomial's relative error.
  for (double x = -1073.9; x < -1022.0; x += 0.7) {
    const double r = fast_exp2(x);
    const double ref = std::exp2(x);
    EXPECT_GT(r, 0.0) << "x = " << x;
    EXPECT_LT(r, kDblMin) << "x = " << x;
    EXPECT_NEAR(r, ref, std::max(1e-8 * ref, 4.0 * kTrueMin)) << "x = " << x;
  }
  EXPECT_EQ(bits(fast_exp2(-1074.0)), bits(kTrueMin));
  EXPECT_EQ(fast_exp2(-1074.5), 0.0);  // below the smallest subnormal
  EXPECT_EQ(fast_exp2(-1.0e9), 0.0);
  EXPECT_EQ(fast_exp2(-kInf), 0.0);
}

TEST(FastExp2Edges, NanPropagates) {
  // A NaN-poisoned state must stay NaN through the fast tiers so the
  // run-health watchdog's finite_state invariant can still see it.
  EXPECT_TRUE(std::isnan(fast_exp2(kNan)));
  EXPECT_TRUE(std::isnan(fast_exp2(-kNan)));
}

TEST(FastExp2Edges, OverflowAndLargestNormals) {
  EXPECT_TRUE(std::isinf(fast_exp2(1024.0)));
  EXPECT_TRUE(std::isinf(fast_exp2(kInf)));
  // [1023, 1024) still computes: 2^1023 is the largest normal exponent.
  EXPECT_EQ(bits(fast_exp2(1023.0)), bits(std::exp2(1023.0)));
  const double near_top = fast_exp2(1023.5);
  EXPECT_TRUE(std::isfinite(near_top));
  EXPECT_NEAR(near_top, std::exp2(1023.5), 1e-8 * std::exp2(1023.5));
}

// --- scalar fast_pow / fast_log2 edge cases --------------------------------

TEST(FastPowCorners, BaseOneAndExponentZeroAreExactlyOne) {
  // std::pow returns exactly 1.0 for pow(1, y) and pow(x, 0) — including a
  // NaN partner operand — and the fast tier must match, or sub-ulp drift
  // shifts fast-tier lifetime metrics for nothing.
  EXPECT_EQ(fast_pow(1.0, 17.3), 1.0);
  EXPECT_EQ(fast_pow(1.0, -4096.0), 1.0);
  EXPECT_EQ(fast_pow(7.7, 0.0), 1.0);
  EXPECT_EQ(fast_pow(1e-300, 0.0), 1.0);
  EXPECT_EQ(fast_pow(1.0, kNan), 1.0);
  EXPECT_EQ(fast_pow(kNan, 0.0), 1.0);
  EXPECT_EQ(std::pow(1.0, kNan), 1.0);  // the std contract being mirrored
  EXPECT_EQ(std::pow(kNan, 0.0), 1.0);
}

TEST(FastLog2Subnormals, RenormalizedThroughThe2p54Lift) {
  for (const double x : {kTrueMin, 3.0 * kTrueMin, 0x1p-1070, 0x1.8p-1050,
                         0x1p-1023, kDblMin}) {
    const double ref = std::log2(x);
    EXPECT_NEAR(fast_log2(x), ref, 1e-8 * std::fabs(ref)) << "x = " << x;
  }
}

// --- lane-batched forms: per-lane bit agreement with the scalars -----------

/// Feeds every value through Pack<W> lanes (padding the tail with 1.0) and
/// requires the lane result to be bit-identical to the scalar call — the
/// NaN-safe comparison is on the bit pattern, not the value.
template <int W>
void expect_exp2_lanes_match(const std::vector<double>& xs) {
  namespace s = simd;
  for (std::size_t base = 0; base < xs.size(); base += W) {
    s::Pack<W> x;
    for (int i = 0; i < W; ++i) {
      x.v[i] = base + i < xs.size() ? xs[base + i] : 1.0;
    }
    const s::Pack<W> got = s::fast_exp2(x);
    for (int i = 0; i < W; ++i) {
      EXPECT_EQ(bits(got.v[i]), bits(fast_exp2(x.v[i])))
          << "W = " << W << ", x = " << x.v[i];
    }
  }
}

template <int W>
void expect_log2_lanes_match(const std::vector<double>& xs) {
  namespace s = simd;
  for (std::size_t base = 0; base < xs.size(); base += W) {
    s::Pack<W> x;
    for (int i = 0; i < W; ++i) {
      x.v[i] = base + i < xs.size() ? xs[base + i] : 1.0;
    }
    const s::Pack<W> got = s::fast_log2(x);
    for (int i = 0; i < W; ++i) {
      EXPECT_EQ(bits(got.v[i]), bits(fast_log2(x.v[i])))
          << "W = " << W << ", x = " << x.v[i];
    }
  }
}

template <int W>
void expect_pow_lanes_match(const std::vector<std::pair<double, double>>& abs) {
  namespace s = simd;
  for (std::size_t base = 0; base < abs.size(); base += W) {
    s::Pack<W> a;
    s::Pack<W> b;
    for (int i = 0; i < W; ++i) {
      const auto& ab =
          base + i < abs.size() ? abs[base + i] : std::pair{2.0, 0.5};
      a.v[i] = ab.first;
      b.v[i] = ab.second;
    }
    const s::Pack<W> got = s::fast_pow(a, b);
    for (int i = 0; i < W; ++i) {
      EXPECT_EQ(bits(got.v[i]), bits(fast_pow(a.v[i], b.v[i])))
          << "W = " << W << ", a = " << a.v[i] << ", b = " << b.v[i];
    }
  }
}

std::vector<double> exp2_inputs() {
  std::vector<double> xs;
  // The Arrhenius exponent range the aging stressors use: (T - 20) / 10
  // over any plausible block temperature, plus a dense sweep.
  for (double t = -40.0; t <= 85.0; t += 0.13) xs.push_back((t - 20.0) / 10.0);
  for (double x = -80.0; x <= 80.0; x += 0.377) xs.push_back(x);
  // Every documented edge: the DBL_MIN boundary and its neighbourhood, the
  // subnormal range, both flush directions, NaN, infinities, fractions
  // straddling integer cuts.
  const double edge[] = {-1022.0,
                         std::nextafter(-1022.0, -kInf),
                         std::nextafter(-1022.0, 0.0),
                         -1022.5,
                         -1050.25,
                         -1073.9,
                         -1074.0,
                         -1074.5,
                         -1100.0,
                         1023.0,
                         1023.5,
                         std::nextafter(1024.0, 0.0),
                         1024.0,
                         1.0e9,
                         -1.0e9,
                         kNan,
                         -kNan,
                         kInf,
                         -kInf,
                         0.0,
                         -0.0,
                         0.49999999999,
                         -0.5};
  xs.insert(xs.end(), std::begin(edge), std::end(edge));
  return xs;
}

std::vector<double> log2_inputs() {
  std::vector<double> xs;
  // Peukert current ratios the router can produce, dense over the
  // mantissa-fold boundary at sqrt(2).
  for (double r = 0.05; r <= 20.0; r *= 1.013) xs.push_back(r);
  for (double m = 1.40; m <= 1.43; m += 1e-4) xs.push_back(m);
  const double edge[] = {kTrueMin, 3.0 * kTrueMin, 0x1p-1070, 0x1.8p-1050,
                         std::nextafter(kDblMin, 0.0), kDblMin, 1.0,
                         1.4142135623730951, std::nextafter(1.4142135623730951, 2.0),
                         0x1.fffffffffffffp1023};
  xs.insert(xs.end(), std::begin(edge), std::end(edge));
  return xs;
}

std::vector<std::pair<double, double>> pow_inputs() {
  std::vector<std::pair<double, double>> abs;
  // Peukert: ratio^(k-1) with k - 1 = 0.15.
  for (double r = 0.05; r <= 20.0; r *= 1.031) abs.push_back({r, 0.15});
  // Arrhenius as a pow: 2^((T-20)/10).
  for (double t = -40.0; t <= 85.0; t += 0.51) abs.push_back({2.0, (t - 20.0) / 10.0});
  // The exact-1.0 corners, NaN partners included.
  abs.push_back({1.0, 17.3});
  abs.push_back({1.0, kNan});
  abs.push_back({kNan, 0.0});
  abs.push_back({7.7, 0.0});
  abs.push_back({kTrueMin, 0.15});  // subnormal base through the log2 lift
  return abs;
}

TEST(LaneBitAgreement, FastExp2AllWidths) {
  const std::vector<double> xs = exp2_inputs();
  expect_exp2_lanes_match<2>(xs);
  expect_exp2_lanes_match<4>(xs);
  expect_exp2_lanes_match<8>(xs);
}

TEST(LaneBitAgreement, FastLog2AllWidths) {
  const std::vector<double> xs = log2_inputs();
  expect_log2_lanes_match<2>(xs);
  expect_log2_lanes_match<4>(xs);
  expect_log2_lanes_match<8>(xs);
}

TEST(LaneBitAgreement, FastPowAllWidths) {
  const std::vector<std::pair<double, double>> abs = pow_inputs();
  expect_pow_lanes_match<2>(abs);
  expect_pow_lanes_match<4>(abs);
  expect_pow_lanes_match<8>(abs);
}

// --- lane-batched tolerance against the true transcendentals ---------------

TEST(LaneTolerance, WithinFastTierBoundsOverStressorRanges) {
  // The lane forms are bit-identical to the scalars (above), but pin the
  // end-to-end bound against std:: too, over the exponent ranges the aging
  // stressors feed in — the bound the 0.1% lifetime tolerance is derived
  // from must hold for the batched tier directly.
  namespace s = simd;
  constexpr int W = s::kLanes;
  for (double t = -40.0; t <= 85.0; t += 0.29 * W) {
    s::Pack<W> x;
    for (int i = 0; i < W; ++i) x.v[i] = (t + 0.29 * i - 20.0) / 10.0;
    const s::Pack<W> got = s::fast_exp2(x);
    for (int i = 0; i < W; ++i) {
      const double ref = std::exp2(x.v[i]);
      EXPECT_NEAR(got.v[i], ref, 1e-8 * ref) << "x = " << x.v[i];
    }
  }
  for (double r = 0.05; r <= 20.0; r *= std::pow(1.031, W)) {
    s::Pack<W> a;
    s::Pack<W> b;
    for (int i = 0; i < W; ++i) {
      a.v[i] = r * std::pow(1.031, i);
      b.v[i] = 0.15;
    }
    const s::Pack<W> got = s::fast_pow(a, b);
    for (int i = 0; i < W; ++i) {
      const double ref = std::pow(a.v[i], 0.15);
      EXPECT_NEAR(got.v[i], ref, 1e-8 * ref) << "ratio = " << a.v[i];
    }
  }
}

// --- mask spill/reload round-trip ------------------------------------------

TEST(MaskRoundTrip, StoreMaskLoadMaskPreservesLanes) {
  // The staged kernel carries the cutoff mask across phase boundaries
  // through a uint64 scratch buffer; the round-trip must preserve every
  // lane of every pattern.
  namespace s = simd;
  constexpr int W = s::kLanes;
  for (unsigned pattern = 0; pattern < (1u << W); ++pattern) {
    s::Pack<W> x;
    for (int i = 0; i < W; ++i) {
      x.v[i] = (pattern >> i) & 1u ? 1.0 : -1.0;
    }
    const s::Mask<W> m = s::cmp_gt(x, s::broadcast<W>(0.0));
    alignas(32) std::uint64_t buf[W];
    s::store_mask(buf, m);
    const s::Mask<W> back = s::load_mask<W>(buf);
    for (int i = 0; i < W; ++i) {
      EXPECT_EQ(s::lane(back, i), s::lane(m, i)) << "pattern " << pattern;
      EXPECT_EQ(s::lane(m, i), ((pattern >> i) & 1u) != 0);
    }
  }
}

}  // namespace
}  // namespace baat::util
