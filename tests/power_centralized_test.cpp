#include <gtest/gtest.h>

#include "power/centralized.hpp"
#include "util/require.hpp"

namespace baat::power {
namespace {

using util::amperes;
using util::minutes;
using util::watts;

battery::Battery shared_bank(double soc = 1.0, double scale = 6.0) {
  // One pooled bank with the same total Ah as six distributed 35 Ah blocks.
  return battery::Battery{battery::LeadAcidParams{}, battery::AgingParams{},
                          battery::ThermalParams{}, scale, 1.0 / scale, soc};
}

TEST(Centralized, SolarCoversLoadDirectly) {
  battery::Battery bank = shared_bank(0.5);
  const std::vector<util::Watts> demands{watts(100.0), watts(50.0)};
  const auto r = route_power_centralized(watts(400.0), demands, bank,
                                         RouterParams{}, minutes(1.0));
  EXPECT_DOUBLE_EQ(r.nodes[0].solar_used.value(), 100.0);
  EXPECT_DOUBLE_EQ(r.nodes[1].solar_used.value(), 50.0);
  EXPECT_DOUBLE_EQ(r.battery_delivered.value(), 0.0);
  EXPECT_GT(r.charge_drawn.value(), 0.0);  // surplus charges the bank
}

TEST(Centralized, BankCoversPooledDeficit) {
  battery::Battery bank = shared_bank(0.9);
  const std::vector<util::Watts> demands{watts(150.0), watts(150.0)};
  const auto r = route_power_centralized(watts(100.0), demands, bank,
                                         RouterParams{}, minutes(1.0));
  EXPECT_NEAR(r.battery_delivered.value(), 200.0, 2.0);
  EXPECT_NEAR(r.nodes[0].battery_delivered.value(),
              r.nodes[1].battery_delivered.value(), 1e-6);
  EXPECT_LT(bank.soc(), 0.9);
}

TEST(Centralized, EmptyBankIsFleetWideSpof) {
  // The paper's single-point-of-failure scenario: the shared bank runs out
  // and EVERY node browns out at once.
  battery::Battery bank = shared_bank(0.0);
  const std::vector<util::Watts> demands{watts(100.0), watts(100.0), watts(100.0)};
  const auto r = route_power_centralized(watts(0.0), demands, bank,
                                         RouterParams{}, minutes(1.0));
  EXPECT_TRUE(r.battery_cutoff);
  for (const auto& n : r.nodes) {
    EXPECT_NEAR(n.unmet.value(), 100.0, 1e-6);
    EXPECT_TRUE(n.battery_cutoff);
  }
}

TEST(Centralized, DistributedSurvivesWhereCentralFails) {
  // Contrast: with per-node batteries only the empty node suffers.
  std::vector<battery::Battery> dist;
  dist.emplace_back(battery::LeadAcidParams{}, battery::AgingParams{},
                    battery::ThermalParams{}, 1.0, 1.0, 0.0);  // empty
  dist.emplace_back(battery::LeadAcidParams{}, battery::AgingParams{},
                    battery::ThermalParams{}, 1.0, 1.0, 0.9);  // healthy
  const std::vector<util::Watts> demands{watts(100.0), watts(100.0)};
  const std::vector<std::size_t> order{0, 1};
  const auto r = route_power(watts(0.0), demands, dist, order, RouterParams{},
                             minutes(1.0));
  EXPECT_GT(r.nodes[0].unmet.value(), 99.0);   // empty node browns out
  EXPECT_LT(r.nodes[1].unmet.value(), 1.0);    // healthy node keeps running
}

TEST(Centralized, DischargeFloorRespected) {
  battery::Battery bank = shared_bank(0.42);
  const std::vector<util::Watts> demands{watts(300.0)};
  for (int i = 0; i < 120; ++i) {
    route_power_centralized(watts(0.0), demands, bank, RouterParams{},
                            minutes(1.0), 0.40);
  }
  // Two hours of standing self-discharge allowed below the router floor.
  EXPECT_GE(bank.soc(), 0.40 - 3e-4);
}

TEST(Centralized, UtilityBeforeBattery) {
  battery::Battery bank = shared_bank(0.9);
  RouterParams params;
  params.utility_budget = watts(1000.0);
  const std::vector<util::Watts> demands{watts(200.0)};
  const auto r = route_power_centralized(watts(0.0), demands, bank, params,
                                         minutes(1.0));
  EXPECT_DOUBLE_EQ(r.nodes[0].utility_used.value(), 200.0);
  EXPECT_DOUBLE_EQ(r.battery_delivered.value(), 0.0);
}

TEST(Centralized, IdleBankStillAges) {
  battery::Battery bank = shared_bank(0.5);
  const std::vector<util::Watts> demands{watts(0.0)};
  route_power_centralized(watts(0.0), demands, bank, RouterParams{}, minutes(1.0));
  EXPECT_DOUBLE_EQ(bank.counters().time_total.value(), 60.0);
}

TEST(Centralized, EnergyBalancePerNode) {
  battery::Battery bank = shared_bank(0.7);
  const std::vector<util::Watts> demands{watts(120.0), watts(60.0), watts(240.0)};
  const auto r = route_power_centralized(watts(150.0), demands, bank,
                                         RouterParams{}, minutes(1.0));
  for (const auto& n : r.nodes) {
    EXPECT_NEAR(n.demand.value(),
                n.solar_used.value() + n.utility_used.value() +
                    n.battery_delivered.value() + n.unmet.value(),
                1e-6);
  }
}

TEST(Centralized, RejectsBadInput) {
  battery::Battery bank = shared_bank();
  const std::vector<util::Watts> demands{watts(-1.0)};
  EXPECT_THROW(route_power_centralized(watts(0.0), demands, bank, RouterParams{},
                                       minutes(1.0)),
               util::PreconditionError);
  const std::vector<util::Watts> ok{watts(1.0)};
  EXPECT_THROW(route_power_centralized(watts(0.0), ok, bank, RouterParams{},
                                       minutes(1.0), 1.5),
               util::PreconditionError);
}

}  // namespace
}  // namespace baat::power
