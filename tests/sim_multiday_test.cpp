#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/multiday.hpp"
#include "util/require.hpp"

namespace baat::sim {
namespace {

TEST(MixedWeather, PatternRepeats) {
  const auto seq = mixed_weather(7, 2, 1, 1);
  ASSERT_EQ(seq.size(), 7u);
  EXPECT_EQ(seq[0], solar::DayType::Sunny);
  EXPECT_EQ(seq[1], solar::DayType::Sunny);
  EXPECT_EQ(seq[2], solar::DayType::Cloudy);
  EXPECT_EQ(seq[3], solar::DayType::Rainy);
  EXPECT_EQ(seq[4], solar::DayType::Sunny);  // wraps
  EXPECT_THROW(mixed_weather(5, 0, 0, 0), util::PreconditionError);
}

TEST(MultiDay, RunsAndAggregates) {
  ScenarioConfig cfg = prototype_scenario();
  Cluster cluster{cfg};
  MultiDayOptions opts;
  opts.days = 5;
  opts.weather = mixed_weather(5, 3, 1, 1);
  opts.probe_every_days = 0;
  const MultiDayResult r = run_multi_day(cluster, opts);
  EXPECT_EQ(r.days.size(), 5u);
  EXPECT_GT(r.total_throughput, 0.0);
  EXPECT_LE(r.min_health_end, r.mean_health_end);
  EXPECT_NEAR(r.soc_histogram.total_weight(), 5.0 * 6.0 * 86400.0, 10.0);
}

// Regression companion to the Histogram::merge fix: the aggregate SoC
// histogram used to be rebuilt by re-adding each day's bin weight at the
// bin's low edge, which silently dropped every day's underflow, overflow
// and NaN weight. The aggregate must now be the exact merge of the per-day
// histograms, every weight class included. (The histogram-level
// failing-before cases — merge carrying under/overflow/NaN — live in
// util_stats_test.)
TEST(MultiDay, SocHistogramAggregateIsExactMergeOfDays) {
  ScenarioConfig cfg = prototype_scenario();
  Cluster cluster{cfg};
  MultiDayOptions opts;
  opts.days = 4;
  opts.weather = mixed_weather(4, 2, 1, 1);
  opts.probe_every_days = 0;
  const MultiDayResult r = run_multi_day(cluster, opts);
  ASSERT_EQ(r.days.size(), 4u);
  util::Histogram manual = make_soc_histogram();
  for (const auto& d : r.days) manual.merge(d.soc_histogram);
  ASSERT_EQ(r.soc_histogram.bin_count(), manual.bin_count());
  for (std::size_t b = 0; b < manual.bin_count(); ++b) {
    EXPECT_DOUBLE_EQ(r.soc_histogram.bin_weight(b), manual.bin_weight(b));
  }
  EXPECT_DOUBLE_EQ(r.soc_histogram.underflow(), manual.underflow());
  EXPECT_DOUBLE_EQ(r.soc_histogram.overflow(), manual.overflow());
  EXPECT_DOUBLE_EQ(r.soc_histogram.nan_weight(), manual.nan_weight());
  EXPECT_DOUBLE_EQ(r.soc_histogram.total_weight(), manual.total_weight());
  EXPECT_NEAR(r.soc_histogram.total_weight(), 4.0 * 6.0 * 86400.0, 10.0);
}

TEST(MultiDay, KeepDaysFalseDropsDetail) {
  Cluster cluster{prototype_scenario()};
  MultiDayOptions opts;
  opts.days = 3;
  opts.weather = mixed_weather(3, 1, 1, 1);
  opts.probe_every_days = 0;
  opts.keep_days = false;
  const MultiDayResult r = run_multi_day(cluster, opts);
  EXPECT_TRUE(r.days.empty());
  EXPECT_GT(r.total_throughput, 0.0);
}

TEST(MultiDay, ProbesOnSchedule) {
  Cluster cluster{prototype_scenario()};
  MultiDayOptions opts;
  opts.days = 6;
  opts.weather = mixed_weather(6, 1, 1, 1);
  opts.probe_every_days = 2;
  opts.keep_days = false;
  const MultiDayResult r = run_multi_day(cluster, opts);
  ASSERT_EQ(r.monthly.size(), 3u);
  EXPECT_EQ(r.monthly[0].month, 1);
  EXPECT_EQ(r.monthly[2].month, 3);
  for (const auto& p : r.monthly) {
    EXPECT_GT(p.full_voltage, 11.5);
    EXPECT_GT(p.capacity_fraction, 0.5);
    EXPECT_GT(p.round_trip_efficiency, 0.5);
  }
}

TEST(MultiDay, HealthDeclinesUnderCycling) {
  Cluster cluster{prototype_scenario()};
  MultiDayOptions opts;
  opts.days = 10;
  opts.weather = mixed_weather(10, 0, 1, 1);  // harsh: no sunny days
  opts.probe_every_days = 0;
  opts.keep_days = false;
  const MultiDayResult r = run_multi_day(cluster, opts);
  EXPECT_LT(r.min_health_end, 1.0);
}

TEST(MultiDay, WeatherSampledFromSunshineFraction) {
  Cluster cluster{prototype_scenario()};
  MultiDayOptions opts;
  opts.days = 4;
  opts.sunshine_fraction = 1.0;  // all days must be sunny
  opts.probe_every_days = 0;
  const MultiDayResult r = run_multi_day(cluster, opts);
  for (const auto& d : r.days) EXPECT_EQ(d.day_type, solar::DayType::Sunny);
}

TEST(MultiDay, RejectsZeroDays) {
  Cluster cluster{prototype_scenario()};
  MultiDayOptions opts;
  opts.days = 0;
  EXPECT_THROW(run_multi_day(cluster, opts), util::PreconditionError);
}

TEST(Experiment, MatchedDayUsesSameTrace) {
  const ScenarioConfig cfg = prototype_scenario();
  const solar::SolarDay day{cfg.plant, solar::DayType::Cloudy, util::Rng{99}};
  const DayResult a = run_matched_day(cfg, core::PolicyKind::EBuff, day);
  const DayResult b = run_matched_day(cfg, core::PolicyKind::EBuff, day);
  EXPECT_DOUBLE_EQ(a.throughput_work, b.throughput_work);
  EXPECT_DOUBLE_EQ(a.solar_energy.value(), b.solar_energy.value());
}

TEST(Experiment, AgeFleetAdvancesAging) {
  Cluster cluster{prototype_scenario()};
  age_fleet(cluster, 5, mixed_weather(5, 0, 1, 1));
  EXPECT_EQ(cluster.days_run(), 5);
  double mean = 0.0;
  for (const auto& b : cluster.batteries()) mean += b.health();
  EXPECT_LT(mean / 6.0, 1.0);
}

TEST(Experiment, LifetimeEstimateShape) {
  const ScenarioConfig cfg = prototype_scenario();
  const LifetimeSummary s =
      estimate_lifetime(cfg, core::PolicyKind::EBuff, 0.5, 12);
  EXPECT_GT(s.lifetime_days, 12.0);
  EXPECT_GE(s.lifetime_days_mean, s.lifetime_days);  // worst ≤ mean
  EXPECT_GT(s.throughput, 0.0);
  EXPECT_DOUBLE_EQ(s.sim_days, 12.0);
}

}  // namespace
}  // namespace baat::sim
