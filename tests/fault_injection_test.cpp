// Runtime behavior of the fault layer: injector determinism, each fault
// class's observable effect, the degraded-mode telemetry guard, and the
// zero-capacity regression tests — the div-zero/NaN class that the open-cell
// fault exposed in battery::run_probe, Battery::step and SohEstimator (each
// of these threw or produced NaN before this PR).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>

#include "battery/bank.hpp"
#include "battery/probe.hpp"
#include "core/guard.hpp"
#include "core/lifetime.hpp"
#include "fault/injector.hpp"
#include "power/router.hpp"
#include "sim/cluster.hpp"
#include "sim/multiday.hpp"
#include "sim/report.hpp"
#include "telemetry/soh.hpp"
#include "util/require.hpp"

namespace baat {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::parse_fault_plan;

telemetry::SensorReading reading_at(double t, double v = 24.5, double a = 3.0,
                                    double c = 25.0) {
  telemetry::SensorReading r;
  r.time = util::Seconds{t};
  r.voltage = util::Volts{v};
  r.current = util::Amperes{a};
  r.temperature = util::Celsius{c};
  return r;
}

battery::Battery fresh_battery(double soc = 0.8) {
  return battery::Battery{battery::LeadAcidParams{}, battery::AgingParams{},
                          battery::ThermalParams{}, 1.0, 1.0, soc};
}

// ---------------------------------------------------------------------------
// Injector determinism.
// ---------------------------------------------------------------------------

TEST(FaultInjector, SameSeedSamePerturbations) {
  const FaultPlan plan =
      parse_fault_plan("sensor_noise:voltage:0.1,sensor_stuck:p=0.05,probe_stale:p=0.1");
  FaultInjector a{plan, 42, 4};
  FaultInjector b{plan, 42, 4};
  for (int t = 0; t < 500; ++t) {
    for (std::size_t n = 0; n < 4; ++n) {
      const auto ra = a.perturb_reading(n, reading_at(t * 60.0));
      const auto rb = b.perturb_reading(n, reading_at(t * 60.0));
      ASSERT_EQ(ra.time.value(), rb.time.value());
      ASSERT_EQ(ra.voltage.value(), rb.voltage.value());
      ASSERT_EQ(ra.current.value(), rb.current.value());
    }
  }
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  const FaultPlan plan = parse_fault_plan("sensor_noise:voltage:0.1");
  FaultInjector a{plan, 1, 1};
  FaultInjector b{plan, 2, 1};
  bool diverged = false;
  for (int t = 0; t < 50 && !diverged; ++t) {
    diverged = a.perturb_reading(0, reading_at(t * 60.0)).voltage.value() !=
               b.perturb_reading(0, reading_at(t * 60.0)).voltage.value();
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, MeterScaleIsStatelessInTime) {
  const FaultPlan plan = parse_fault_plan("meter_glitch:p=0.5:scale=0.4");
  const FaultInjector inj{plan, 7, 2};
  for (int t = 0; t < 200; ++t) {
    const util::Seconds now{t * 60.0};
    const double first = inj.meter_scale(0, now);
    // Same instant, any call count: must agree (build_context may re-read).
    EXPECT_EQ(inj.meter_scale(0, now), first);
    EXPECT_GT(first, 0.0);
    EXPECT_GE(first, 0.6 - 1e-12);
    EXPECT_LE(first, 1.4 + 1e-12);
  }
}

TEST(FaultInjector, ProbeStaleDeterministicPerIndex) {
  const FaultPlan plan = parse_fault_plan("probe_stale:p=0.5");
  const FaultInjector inj{plan, 11, 1};
  int stale = 0;
  for (int i = 0; i < 100; ++i) {
    const bool s = inj.probe_is_stale(i);
    EXPECT_EQ(inj.probe_is_stale(i), s);
    stale += s ? 1 : 0;
  }
  // p=0.5 over 100 draws: comfortably away from both degenerate outcomes.
  EXPECT_GT(stale, 20);
  EXPECT_LT(stale, 80);
}

// ---------------------------------------------------------------------------
// Per-class effects.
// ---------------------------------------------------------------------------

TEST(FaultInjector, BiasShiftsChannelExactly) {
  FaultInjector inj{parse_fault_plan("sensor_bias:current:-0.75"), 3, 1};
  const auto out = inj.perturb_reading(0, reading_at(60.0));
  EXPECT_DOUBLE_EQ(out.current.value(), 3.0 - 0.75);
  EXPECT_DOUBLE_EQ(out.voltage.value(), 24.5);   // other channels untouched
  EXPECT_DOUBLE_EQ(out.time.value(), 60.0);      // timestamps never faked
}

TEST(FaultInjector, SocChannelNoiseEntersThroughCurrent) {
  FaultInjector inj{parse_fault_plan("sensor_bias:soc:0.01"), 3, 1};
  const auto out = inj.perturb_reading(0, reading_at(60.0));
  EXPECT_DOUBLE_EQ(out.current.value(), 3.0 + 0.01 * 35.0);
  EXPECT_DOUBLE_EQ(out.voltage.value(), 24.5);
}

TEST(FaultInjector, StuckSensorFreezesUntilHoldExpires) {
  // p=1 sticks on the very first reading for 10 minutes.
  FaultInjector inj{parse_fault_plan("sensor_stuck:p=1:hold=10"), 5, 1};
  const auto first = inj.perturb_reading(0, reading_at(0.0, 24.0));
  const auto during = inj.perturb_reading(0, reading_at(300.0, 20.0));
  EXPECT_DOUBLE_EQ(during.voltage.value(), first.voltage.value());
  EXPECT_DOUBLE_EQ(during.time.value(), first.time.value());  // stale timestamp
}

TEST(FaultInjector, StaleReadingRepeatsPreviousSample) {
  FaultInjector inj{parse_fault_plan("probe_stale:p=1"), 5, 1};
  const auto first = inj.perturb_reading(0, reading_at(0.0, 24.0));
  const auto second = inj.perturb_reading(0, reading_at(60.0, 23.0));
  EXPECT_DOUBLE_EQ(second.voltage.value(), first.voltage.value());
  EXPECT_DOUBLE_EQ(second.time.value(), first.time.value());
}

TEST(FaultInjector, SolarScaleDropoutWindowAndDerate) {
  FaultInjector inj{parse_fault_plan("pv_dropout:day=2:hours=4:start=10,pv_derate:factor=0.5"),
                    9, 1};
  // Outside the dropout day: only the derate applies.
  EXPECT_DOUBLE_EQ(inj.solar_scale(1, util::hours(12.0)), 0.5);
  // On the day, inside the window: hard zero.
  EXPECT_DOUBLE_EQ(inj.solar_scale(2, util::hours(11.0)), 0.0);
  EXPECT_DOUBLE_EQ(inj.solar_scale(2, util::hours(13.9)), 0.0);
  // Window edges: [start, start+hours).
  EXPECT_DOUBLE_EQ(inj.solar_scale(2, util::hours(9.9)), 0.5);
  EXPECT_DOUBLE_EQ(inj.solar_scale(2, util::hours(14.0)), 0.5);
}

TEST(FaultInjector, CellWeakReplacesUnit) {
  battery::BankSpec spec;
  spec.units = 3;
  util::Rng rng{1};
  auto bank = battery::make_bank(spec, rng);
  const double healthy_cap = bank[2].usable_capacity().value();
  FaultInjector inj{parse_fault_plan("cell_weak:bank=1:capacity=0.7"), 1, 3};
  inj.apply_bank_faults(bank, spec);
  EXPECT_LT(bank[1].usable_capacity().value(), 0.75 * healthy_cap);
  EXPECT_NEAR(bank[2].usable_capacity().value(), healthy_cap, 1e-12);
}

TEST(FaultInjector, CellOpenFiresOnceOnItsDay) {
  battery::BankSpec spec;
  spec.units = 2;
  util::Rng rng{1};
  auto bank = battery::make_bank(spec, rng);
  FaultInjector inj{parse_fault_plan("cell_open:bank=0:day=3"), 1, 2};
  inj.begin_day(2, bank);
  EXPECT_FALSE(bank[0].open_failed());
  inj.begin_day(3, bank);
  EXPECT_TRUE(bank[0].open_failed());
  EXPECT_FALSE(bank[1].open_failed());
  EXPECT_DOUBLE_EQ(bank[0].open_circuit().value(), 0.0);
  EXPECT_DOUBLE_EQ(bank[0].usable_capacity().value(), 0.0);
  EXPECT_DOUBLE_EQ(bank[0].health(), 0.0);
  EXPECT_TRUE(bank[0].end_of_life());
}

TEST(FaultInjector, BankIndexValidatedAgainstNodeCount) {
  EXPECT_THROW(FaultInjector(parse_fault_plan("cell_open:bank=6"), 1, 6),
               util::PreconditionError);
  EXPECT_THROW(FaultInjector(parse_fault_plan("cell_weak:bank=9:capacity=0.8"), 1, 4),
               util::PreconditionError);
}

// ---------------------------------------------------------------------------
// Degraded-mode telemetry guard.
// ---------------------------------------------------------------------------

core::GuardParams enabled_guard() {
  core::GuardParams p;
  p.enabled = true;
  return p;
}

TEST(TelemetryGuard, DisabledGuardIsTransparent) {
  core::TelemetryGuard guard{core::GuardParams{}, 2};
  EXPECT_DOUBLE_EQ(guard.filter_soc(0, 7.5, util::Seconds{0.0}, util::Seconds{0.0}),
                   7.5);  // even nonsense passes through when disabled
  EXPECT_EQ(guard.fallback_count(), 0u);
}

TEST(TelemetryGuard, AcceptsPlausibleReadings) {
  core::TelemetryGuard guard{enabled_guard(), 1};
  for (int t = 0; t < 10; ++t) {
    const util::Seconds now{t * 60.0};
    EXPECT_DOUBLE_EQ(guard.filter_soc(0, 0.8 - 0.001 * t, now, now), 0.8 - 0.001 * t);
  }
  EXPECT_EQ(guard.fallback_count(), 0u);
}

TEST(TelemetryGuard, RangeViolationFallsBackToLastGood) {
  core::TelemetryGuard guard{enabled_guard(), 1};
  ASSERT_DOUBLE_EQ(guard.filter_soc(0, 0.8, util::Seconds{0.0}, util::Seconds{0.0}),
                   0.8);
  const double out =
      guard.filter_soc(0, 1.7, util::Seconds{60.0}, util::Seconds{60.0});
  EXPECT_GT(out, 0.25);  // discounted last-good, not the bogus reading
  EXPECT_LE(out, 0.8 + 1e-12);
  EXPECT_EQ(guard.fallback_count(), 1u);
}

TEST(TelemetryGuard, NonFiniteReadingNeverPropagates) {
  core::TelemetryGuard guard{enabled_guard(), 1};
  (void)guard.filter_soc(0, 0.6, util::Seconds{0.0}, util::Seconds{0.0});
  const double nan_out = guard.filter_soc(
      0, std::numeric_limits<double>::quiet_NaN(), util::Seconds{60.0},
      util::Seconds{60.0});
  EXPECT_TRUE(std::isfinite(nan_out));
  const double inf_out = guard.filter_soc(
      0, std::numeric_limits<double>::infinity(), util::Seconds{120.0},
      util::Seconds{120.0});
  EXPECT_TRUE(std::isfinite(inf_out));
  EXPECT_EQ(guard.fallback_count(), 2u);
}

TEST(TelemetryGuard, StaleReadingDecaysTowardConservative) {
  core::GuardParams p = enabled_guard();
  p.conservative_soc = 0.25;
  core::TelemetryGuard guard{p, 1};
  ASSERT_DOUBLE_EQ(guard.filter_soc(0, 0.9, util::Seconds{0.0}, util::Seconds{0.0}),
                   0.9);
  // Sensor froze at t=0; decisions keep coming. Staleness past the limit
  // rejects the reading and the fallback decays with outage age.
  const double early =
      guard.filter_soc(0, 0.9, util::Seconds{0.0}, util::minutes(15.0));
  const double late =
      guard.filter_soc(0, 0.9, util::Seconds{0.0}, util::hours(4.0));
  EXPECT_LT(early, 0.9);
  EXPECT_LT(late, early);
  EXPECT_NEAR(late, p.conservative_soc, 0.02);
  EXPECT_GE(guard.fallback_count(), 2u);
}

TEST(TelemetryGuard, RateViolationRejected) {
  core::TelemetryGuard guard{enabled_guard(), 1};
  ASSERT_DOUBLE_EQ(guard.filter_soc(0, 0.5, util::Seconds{0.0}, util::Seconds{0.0}),
                   0.5);
  // 0.5 → 0.95 in 60 s is 7.5e-3/s, far past max_rate_per_s=1e-3.
  const double out =
      guard.filter_soc(0, 0.95, util::Seconds{60.0}, util::Seconds{60.0});
  EXPECT_LT(out, 0.95);
  EXPECT_EQ(guard.fallback_count(), 1u);
}

TEST(TelemetryGuard, SameTickEvaluationIsCached) {
  core::TelemetryGuard guard{enabled_guard(), 1};
  (void)guard.filter_soc(0, 0.5, util::Seconds{0.0}, util::Seconds{0.0});
  const util::Seconds now{60.0};
  const double first = guard.filter_soc(0, 2.0, util::Seconds{60.0}, now);
  const double second = guard.filter_soc(0, 2.0, util::Seconds{60.0}, now);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(guard.fallback_count(), 1u);  // not double-counted
}

TEST(TelemetryGuard, OutputAlwaysInUnitRange) {
  core::TelemetryGuard guard{enabled_guard(), 1};
  util::Rng rng{99};
  for (int t = 0; t < 2000; ++t) {
    const util::Seconds now{t * 60.0};
    double raw = rng.uniform(-2.0, 3.0);
    if (rng.bernoulli(0.05)) raw = std::numeric_limits<double>::quiet_NaN();
    const double age = rng.bernoulli(0.2) ? rng.uniform(0.0, 7200.0) : 0.0;
    const double out =
        guard.filter_soc(0, raw, util::Seconds{now.value() - age}, now);
    ASSERT_TRUE(std::isfinite(out));
    ASSERT_GE(out, 0.0);
    ASSERT_LE(out, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Zero-capacity regression tests. Each of these fails on the pre-PR code.
// ---------------------------------------------------------------------------

// SohEstimator::add_probe rejected capacity_fraction == 0 with a
// PreconditionError — but 0 is exactly what a probe of an open cell
// measures, and it must feed measured_eol(), not kill the simulation.
TEST(ZeroCapacityRegression, SohEstimatorAcceptsDeadCellProbe) {
  telemetry::SohEstimator soh;
  soh.add_probe(30.0, 0.95);
  EXPECT_NO_THROW(soh.add_probe(60.0, 0.0));
  EXPECT_TRUE(soh.measured_eol());
  const auto eol = soh.projected_eol_day();
  ASSERT_TRUE(eol.has_value());
  EXPECT_TRUE(std::isfinite(*eol));
}

// Battery::step's charge branch divided dq by usable_capacity(); with an
// open cell that capacity is 0 and the SoC went NaN.
TEST(ZeroCapacityRegression, OpenCellStepStaysFinite) {
  battery::Battery bat = fresh_battery(0.5);
  bat.fail_open();
  for (int i = 0; i < 10; ++i) {
    const auto discharge = bat.step(util::amperes(5.0), util::minutes(1.0));
    EXPECT_DOUBLE_EQ(discharge.actual_current.value(), 0.0);
    const auto charge = bat.step(util::amperes(-5.0), util::minutes(1.0));
    EXPECT_DOUBLE_EQ(charge.actual_current.value(), 0.0);
    ASSERT_TRUE(std::isfinite(bat.soc()));
    ASSERT_GE(bat.soc(), 0.0);
    ASSERT_LE(bat.soc(), 1.0);
  }
}

// run_probe on an open cell: the charge/discharge rigs must terminate and
// report a zero-capacity measurement instead of looping or throwing.
TEST(ZeroCapacityRegression, ProbeOfOpenCellMeasuresZero) {
  battery::Battery bat = fresh_battery(0.9);
  bat.fail_open();
  battery::ProbeResult probe;
  ASSERT_NO_THROW(probe = battery::run_probe(bat));
  EXPECT_DOUBLE_EQ(probe.capacity_fraction, 0.0);
  EXPECT_TRUE(std::isfinite(probe.full_voltage.value()));
  EXPECT_TRUE(std::isfinite(probe.round_trip_efficiency));
}

// The router asked an open cell for current at 0 V open-circuit, which blew
// a precondition inside current_for_dc_power mid-simulation.
TEST(ZeroCapacityRegression, RouterSurvivesOpenCellInFleet) {
  std::vector<battery::Battery> bats;
  bats.push_back(fresh_battery(0.9));
  bats.push_back(fresh_battery(0.9));
  bats[0].fail_open();
  const std::vector<util::Watts> demands{util::watts(150.0), util::watts(150.0)};
  std::vector<std::size_t> order{0, 1};
  power::RouteResult r;
  // No solar: both nodes want battery power; node 0's cell is open.
  ASSERT_NO_THROW(r = power::route_power(util::watts(0.0), demands, bats, order,
                                         power::RouterParams{}, util::minutes(1.0)));
  EXPECT_TRUE(r.nodes[0].battery_cutoff);
  EXPECT_NEAR(r.nodes[0].unmet.value() + r.nodes[0].utility_used.value(), 150.0, 1e-6);
  EXPECT_DOUBLE_EQ(r.nodes[0].battery_delivered.value(), 0.0);
  EXPECT_GT(r.nodes[1].battery_delivered.value(), 0.0);  // healthy node unaffected
}

// End-to-end: a cluster with a day-0 open cell must run a full day and a
// probe cycle without NaNs anywhere the results expose.
TEST(ZeroCapacityRegression, ClusterRunsWithOpenCellFromDayZero) {
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.nodes = 3;
  cfg.faults = parse_fault_plan("cell_open:bank=1");
  cfg.guard.enabled = true;
  sim::Cluster cluster{cfg};
  sim::MultiDayOptions opt;
  opt.days = 2;
  opt.probe_every_days = 1;  // probes the worst (dead) unit
  opt.sunshine_fraction = 0.5;
  const sim::MultiDayResult r = sim::run_multi_day(cluster, opt);
  EXPECT_TRUE(std::isfinite(r.total_throughput));
  EXPECT_TRUE(std::isfinite(r.mean_health_end));
  EXPECT_DOUBLE_EQ(cluster.batteries()[1].health(), 0.0);
  for (const auto& mp : r.monthly) {
    EXPECT_TRUE(std::isfinite(mp.capacity_fraction));
    EXPECT_TRUE(std::isfinite(mp.full_voltage));
  }
  for (const auto& b : cluster.batteries()) {
    EXPECT_TRUE(std::isfinite(b.soc()));
  }
}

// Old extrapolate_lifetime rejected health_now == 0, so every report /
// summary path crashed (exit 2) the moment a fleet contained a dead cell.
TEST(ZeroCapacityRegression, LifetimeExtrapolationAcceptsDeadBattery) {
  core::LifetimeEstimate est;
  EXPECT_NO_THROW(est = core::extrapolate_lifetime(1.0, 0.0, 5.0));
  EXPECT_TRUE(std::isfinite(est.days));
  // Full fade in 5 days, EOL line at 0.80: crossed after (1-0.8)/(1/5) = 1 d.
  EXPECT_NEAR(est.days, 1.0, 1e-9);
  // Degenerate-but-legal bounds still rejected.
  EXPECT_THROW((void)core::extrapolate_lifetime(1.0, -0.1, 5.0),
               util::PreconditionError);
}

TEST(ZeroCapacityRegression, ReportRendersFleetWithDeadCell) {
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.nodes = 3;
  cfg.faults = parse_fault_plan("cell_open:bank=1:day=1");
  cfg.guard.enabled = true;
  sim::Cluster cluster{cfg};
  sim::MultiDayOptions opt;
  opt.days = 3;
  opt.probe_every_days = 1;
  opt.sunshine_fraction = 0.5;
  const sim::MultiDayResult r = sim::run_multi_day(cluster, opt);
  ASSERT_DOUBLE_EQ(r.min_health_end, 0.0);

  sim::ReportInputs in;
  in.config = &cfg;
  in.result = &r;
  in.cluster = &cluster;
  std::ostringstream out;
  EXPECT_NO_THROW(sim::write_report(out, in));
  EXPECT_NE(out.str().find("projected end-of-life"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Probe staleness plumbs through the multi-day probe series.
// ---------------------------------------------------------------------------

TEST(FaultMultiDay, StaleProbeRepeatsPreviousMeasurement) {
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.nodes = 2;
  cfg.faults = parse_fault_plan("probe_stale:p=1");
  cfg.guard.enabled = true;
  sim::Cluster cluster{cfg};
  sim::MultiDayOptions opt;
  opt.days = 3;
  opt.probe_every_days = 1;
  opt.sunshine_fraction = 0.5;
  const sim::MultiDayResult r = sim::run_multi_day(cluster, opt);
  ASSERT_EQ(r.monthly.size(), 3u);
  // p=1: every probe after the first replays it verbatim.
  EXPECT_DOUBLE_EQ(r.monthly[1].capacity_fraction, r.monthly[0].capacity_fraction);
  EXPECT_DOUBLE_EQ(r.monthly[2].capacity_fraction, r.monthly[0].capacity_fraction);
  EXPECT_DOUBLE_EQ(r.monthly[1].full_voltage, r.monthly[0].full_voltage);
}

// Regression: the injector used to derive its streams from the experiment
// seed alone, so every shard of a sharded datacenter replayed the *same*
// fault sequence — correlated noise across supposedly independent shards.
TEST(FaultInjector, ShardForkDecorrelatesStreams) {
  const FaultPlan plan = parse_fault_plan("sensor_noise:soc:0.05");
  FaultInjector shard0{plan, 42, 2, 0};
  FaultInjector shard1{plan, 42, 2, 1};
  bool diverged = false;
  // sensor_noise:soc skews the current channel (coulomb-counting attack).
  for (int t = 1; t <= 32 && !diverged; ++t) {
    diverged = shard0.perturb_reading(0, reading_at(t * 60.0)).current.value() !=
               shard1.perturb_reading(0, reading_at(t * 60.0)).current.value();
  }
  EXPECT_TRUE(diverged) << "shard 1 replayed shard 0's fault stream";
}

TEST(FaultInjector, ShardZeroKeepsTheHistoricalStream) {
  // shard = 0 must be bit-identical to the pre-shard injector (the default
  // argument), so unsharded runs and sweep jobs reproduce old results.
  const FaultPlan plan = parse_fault_plan("sensor_noise:soc:0.05");
  FaultInjector legacy{plan, 42, 2};
  FaultInjector shard0{plan, 42, 2, 0};
  for (int t = 1; t <= 16; ++t) {
    EXPECT_DOUBLE_EQ(legacy.perturb_reading(1, reading_at(t * 60.0)).current.value(),
                     shard0.perturb_reading(1, reading_at(t * 60.0)).current.value());
  }
}

TEST(FaultInjector, SameShardSameSeedIsReproducible) {
  const FaultPlan plan = parse_fault_plan("sensor_noise:soc:0.05,meter_glitch:p=0.5");
  FaultInjector a{plan, 7, 2, 3};
  FaultInjector b{plan, 7, 2, 3};
  for (int t = 1; t <= 16; ++t) {
    EXPECT_DOUBLE_EQ(a.perturb_reading(0, reading_at(t * 60.0)).current.value(),
                     b.perturb_reading(0, reading_at(t * 60.0)).current.value());
    // The stateless hash draws must re-key on the shard too.
    EXPECT_DOUBLE_EQ(a.meter_scale(0, util::Seconds{t * 60.0}),
                     b.meter_scale(0, util::Seconds{t * 60.0}));
  }
}

TEST(FaultInjector, StatelessDrawsDecorrelateAcrossShards) {
  const FaultPlan plan = parse_fault_plan("meter_glitch:p=0.5:scale=0.4");
  FaultInjector shard0{plan, 7, 2, 0};
  FaultInjector shard2{plan, 7, 2, 2};
  bool diverged = false;
  for (int t = 1; t <= 64 && !diverged; ++t) {
    diverged = shard0.meter_scale(0, util::Seconds{t * 60.0}) !=
               shard2.meter_scale(0, util::Seconds{t * 60.0});
  }
  EXPECT_TRUE(diverged) << "meter-glitch hash draws ignore the shard";
}

}  // namespace
}  // namespace baat
