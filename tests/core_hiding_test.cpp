#include <gtest/gtest.h>

#include "core/hiding.hpp"

namespace baat::core {
namespace {

NodeView node(std::size_t idx, double nat, double cf, double pc, double cores_free = 8.0,
              double mem_free = 16.0, bool on = true) {
  NodeView n;
  n.index = idx;
  n.powered_on = on;
  n.metrics_life.nat = nat;
  n.metrics_life.cf = cf;
  n.metrics_life.pc = pc;
  n.metrics = n.metrics_life;
  n.cores_free = cores_free;
  n.mem_free_gb = mem_free;
  n.dvfs_top = 3;
  n.dvfs_level = 3;
  return n;
}

VmView vm(workload::VmId id, double cores, double mem, bool migratable = true) {
  VmView v;
  v.id = id;
  v.cores = cores;
  v.mem_gb = mem;
  v.migratable = migratable;
  return v;
}

DemandProfile demand(double frac, double wh) {
  DemandProfile d;
  d.power_fraction_of_peak = frac;
  d.energy_request = util::watt_hours(wh);
  return d;
}

PolicyContext three_node_ctx() {
  PolicyContext ctx;
  ctx.nodes.push_back(node(0, 0.3, 0.5, 0.9));   // worst
  ctx.nodes.push_back(node(1, 0.0, 1.1, 0.25));  // healthiest
  ctx.nodes.push_back(node(2, 0.1, 0.9, 0.5));   // middle
  return ctx;
}

TEST(Hiding, PlacementPicksHealthiestNode) {
  const PolicyContext ctx = three_node_ctx();
  const auto pick =
      select_placement(ctx, 2.0, 4.0, demand(0.6, 300.0), DemandThresholds{}, {});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);
}

TEST(Hiding, PlacementSkipsNodesWithoutCapacity) {
  PolicyContext ctx = three_node_ctx();
  ctx.nodes[1].cores_free = 1.0;  // healthiest cannot host
  const auto pick =
      select_placement(ctx, 2.0, 4.0, demand(0.6, 300.0), DemandThresholds{}, {});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);
}

TEST(Hiding, PlacementSkipsPoweredOffNodes) {
  PolicyContext ctx = three_node_ctx();
  ctx.nodes[1].powered_on = false;
  const auto pick =
      select_placement(ctx, 2.0, 4.0, demand(0.6, 300.0), DemandThresholds{}, {});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);
}

TEST(Hiding, NoFeasibleNodeReturnsNullopt) {
  PolicyContext ctx = three_node_ctx();
  for (auto& n : ctx.nodes) n.cores_free = 0.5;
  EXPECT_FALSE(
      select_placement(ctx, 2.0, 4.0, demand(0.6, 300.0), DemandThresholds{}, {})
          .has_value());
}

TEST(Hiding, NodeScoresOrderMatchesHealth) {
  const PolicyContext ctx = three_node_ctx();
  const AgingWeights w{1.0 / 3, 1.0 / 3, 1.0 / 3};
  const auto scores = node_scores(ctx, w, {});
  EXPECT_GT(scores[0], scores[2]);
  EXPECT_GT(scores[2], scores[1]);
}

TEST(Hiding, RebalanceMovesSmallestVmWorstToBest) {
  PolicyContext ctx = three_node_ctx();
  ctx.nodes[0].vms = {vm(10, 4.0, 8.0), vm(11, 2.0, 4.0)};
  const AgingWeights w{1.0 / 3, 1.0 / 3, 1.0 / 3};
  const auto move = propose_rebalance(ctx, w, {}, 0.05);
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->vm, 11);  // smallest migratable VM
  EXPECT_EQ(move->from, 0u);
  EXPECT_EQ(move->to, 1u);
}

TEST(Hiding, RebalanceRespectsThreshold) {
  PolicyContext ctx;
  ctx.nodes.push_back(node(0, 0.10, 1.0, 0.4));
  ctx.nodes.push_back(node(1, 0.11, 1.0, 0.4));
  ctx.nodes[0].vms = {vm(1, 2.0, 4.0)};
  ctx.nodes[1].vms = {vm(2, 2.0, 4.0)};
  EXPECT_FALSE(propose_rebalance(ctx, AgingWeights{}, {}, 0.5).has_value());
}

TEST(Hiding, RebalanceNeedsMigratableVm) {
  PolicyContext ctx = three_node_ctx();
  ctx.nodes[0].vms = {vm(10, 2.0, 4.0, /*migratable=*/false)};
  const AgingWeights w{1.0 / 3, 1.0 / 3, 1.0 / 3};
  // Worst node has nothing migratable; middle node has nothing at all.
  EXPECT_FALSE(propose_rebalance(ctx, w, {}, 0.01).has_value());
}

TEST(Hiding, RebalanceNeedsTargetCapacity) {
  PolicyContext ctx = three_node_ctx();
  ctx.nodes[0].vms = {vm(10, 2.0, 4.0)};
  ctx.nodes[1].cores_free = 1.0;
  ctx.nodes[2].cores_free = 1.0;
  const AgingWeights w{1.0 / 3, 1.0 / 3, 1.0 / 3};
  EXPECT_FALSE(propose_rebalance(ctx, w, {}, 0.01).has_value());
}

TEST(Hiding, RebalanceSingleNodeIsNoop) {
  PolicyContext ctx;
  ctx.nodes.push_back(node(0, 0.3, 0.5, 0.9));
  ctx.nodes[0].vms = {vm(1, 2.0, 4.0)};
  EXPECT_FALSE(propose_rebalance(ctx, AgingWeights{}, {}, 0.0).has_value());
}

}  // namespace
}  // namespace baat::core
