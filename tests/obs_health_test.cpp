// Run-health primitives and watchdog tests (DESIGN.md §5g): severity
// scoring, the bounded incident log and its three observability surfaces
// (report, trace event, lazy counter), snapshot round-trips, and the
// watchdog's declarative invariants — including the readable-abort path a
// poisoned state word must take.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "battery/battery.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sim/results.hpp"
#include "sim/watchdog.hpp"
#include "snapshot/serialize.hpp"

namespace baat {
namespace {

obs::HealthIncident incident(const char* check, obs::HealthSeverity sev, int node,
                             double value, const char* detail = "") {
  obs::HealthIncident i;
  i.check = check;
  i.severity = sev;
  i.node = node;
  i.value = value;
  i.detail = detail;
  i.ts = 120.0;
  i.day = 2;
  return i;
}

TEST(HealthSeverity, NamesAndScores) {
  EXPECT_EQ(obs::health_severity_name(obs::HealthSeverity::Warn), "warn");
  EXPECT_EQ(obs::health_severity_name(obs::HealthSeverity::Error), "error");
  EXPECT_EQ(obs::health_severity_name(obs::HealthSeverity::Fatal), "fatal");
  EXPECT_DOUBLE_EQ(obs::health_severity_score(obs::HealthSeverity::Warn), 1.0);
  EXPECT_DOUBLE_EQ(obs::health_severity_score(obs::HealthSeverity::Error), 10.0);
  EXPECT_DOUBLE_EQ(obs::health_severity_score(obs::HealthSeverity::Fatal), 1000.0);
}

TEST(HealthLog, ScoreSumsAndFatalLatches) {
  obs::global_registry().reset();
  obs::HealthLog log;
  EXPECT_DOUBLE_EQ(log.score(), 0.0);
  EXPECT_FALSE(log.any_fatal());

  log.record(incident("stall", obs::HealthSeverity::Warn, -1, 7.0));
  log.record(incident("energy_balance", obs::HealthSeverity::Error, 1, 0.5));
  EXPECT_DOUBLE_EQ(log.score(), 11.0);
  EXPECT_EQ(log.count(), 2u);
  EXPECT_FALSE(log.any_fatal());

  log.record(incident("finite_state", obs::HealthSeverity::Fatal, 0,
                      std::numeric_limits<double>::quiet_NaN()));
  EXPECT_DOUBLE_EQ(log.score(), 1011.0);
  EXPECT_TRUE(log.any_fatal());
  obs::global_registry().reset();
}

TEST(HealthLog, RecordReachesCounterAndTraceSurfaces) {
  obs::global_registry().reset();
  obs::global_trace().clear();
  obs::set_trace_enabled(true);

  // A healthy run's registry export must not mention health at all — the
  // counters are created lazily on the first incident.
  EXPECT_EQ(obs::global_registry().json().find("health."), std::string::npos);

  obs::HealthLog log;
  log.record(incident("soc_range", obs::HealthSeverity::Error, 3, 1.02,
                      "battery SoC escaped [0, 1]"));
  const std::string json = obs::global_registry().json();
  EXPECT_NE(json.find("\"health.error\""), std::string::npos);

  std::ostringstream trace;
  obs::global_trace().write_jsonl(trace);
  EXPECT_NE(trace.str().find("\"health\""), std::string::npos);
  EXPECT_NE(trace.str().find("error:soc_range"), std::string::npos);

  obs::set_trace_enabled(false);
  obs::global_trace().clear();
  obs::global_registry().reset();
}

TEST(HealthLog, ReportIsReadableAndListsIncidents) {
  obs::global_registry().reset();
  obs::HealthLog log;
  log.record(incident("energy_balance", obs::HealthSeverity::Error, 1, 2.5,
                      "node demand not covered"));
  log.record(incident("stall", obs::HealthSeverity::Warn, -1, 7.0));
  const std::string report = log.report("watchdog aborted the simulation");
  EXPECT_NE(report.find("watchdog aborted the simulation"), std::string::npos);
  EXPECT_NE(report.find("health score 11 from 2 incident(s)"), std::string::npos);
  EXPECT_NE(report.find("[error] day 2 t=120s node 1 energy_balance value=2.5"),
            std::string::npos);
  EXPECT_NE(report.find("(node demand not covered)"), std::string::npos);
  // Cluster-wide incidents (node -1) omit the node column.
  EXPECT_NE(report.find("[warn] day 2 t=120s stall value=7"), std::string::npos);
  obs::global_registry().reset();
}

TEST(HealthLog, CapsStoredIncidentsButKeepsCounting) {
  obs::global_registry().reset();
  obs::HealthLog log;
  for (int i = 0; i < 300; ++i) {
    log.record(incident("energy_balance", obs::HealthSeverity::Warn, i % 4, 0.1));
  }
  EXPECT_EQ(log.incidents().size(), obs::HealthLog::kDefaultCapacity);
  EXPECT_EQ(log.count(), 300u);
  EXPECT_EQ(log.dropped(), 300u - obs::HealthLog::kDefaultCapacity);
  EXPECT_DOUBLE_EQ(log.score(), 300.0);
  EXPECT_NE(log.report("h").find("beyond the log cap"), std::string::npos);
  obs::global_registry().reset();
}

TEST(HealthLog, SnapshotRoundTripPreservesEverything) {
  obs::global_registry().reset();
  obs::HealthLog log;
  log.record(incident("soc_range", obs::HealthSeverity::Error, 2, -0.01, "low"));
  log.record(incident("stall", obs::HealthSeverity::Warn, -1, 7.0));

  snapshot::SnapshotWriter w;
  log.save_state(w);
  snapshot::SnapshotReader r{w.bytes()};
  // Loading must not re-emit: counters/trace reflect live record() calls only.
  obs::global_registry().reset();
  obs::HealthLog restored;
  restored.load_state(r);

  EXPECT_EQ(restored.count(), log.count());
  EXPECT_EQ(restored.dropped(), log.dropped());
  EXPECT_EQ(restored.score(), log.score());
  EXPECT_EQ(restored.any_fatal(), log.any_fatal());
  EXPECT_EQ(restored.report("x"), log.report("x"));
  // The registry keeps zeroed handles across reset(); what matters is that
  // load_state never bumped them back up.
  EXPECT_EQ(obs::global_registry().counter("health.error").value(), 0.0);
  EXPECT_EQ(obs::global_registry().counter("health.warn").value(), 0.0);
  obs::global_registry().reset();
}

// ---------------------------------------------------------------------------
// Watchdog invariants against real batteries and synthetic router results.
// ---------------------------------------------------------------------------

std::vector<battery::Battery> two_batteries(double soc = 0.8) {
  std::vector<battery::Battery> b;
  b.emplace_back(battery::LeadAcidParams{}, battery::AgingParams{},
                 battery::ThermalParams{}, 1.0, 1.0, soc);
  b.emplace_back(battery::LeadAcidParams{}, battery::AgingParams{},
                 battery::ThermalParams{}, 1.0, 1.0, soc);
  return b;
}

power::RouteResult balanced_route(std::size_t nodes) {
  power::RouteResult r;
  r.nodes.resize(nodes);
  for (auto& n : r.nodes) {
    n.demand = util::watts(100.0);
    n.solar_used = util::watts(60.0);
    n.utility_used = util::watts(40.0);
  }
  return r;
}

TEST(Watchdog, CleanStateRaisesNothing) {
  obs::global_registry().reset();
  sim::Watchdog dog{sim::WatchdogParams{}, 2};
  auto batteries = two_batteries();
  dog.check_day_start(0, batteries);
  dog.check_tick(0, balanced_route(2), batteries);
  sim::DayResult day;
  day.throughput_work = 5.0;
  dog.check_day_end(0, day, batteries);
  EXPECT_DOUBLE_EQ(dog.log().score(), 0.0);
  EXPECT_FALSE(dog.tripped());
  obs::global_registry().reset();
}

TEST(Watchdog, NanSocAtDayStartAbortsWithReadableReport) {
  obs::global_registry().reset();
  sim::Watchdog dog{sim::WatchdogParams{}, 2};
  auto batteries = two_batteries();
  batteries[1].debug_set_soc(std::numeric_limits<double>::quiet_NaN());
  try {
    dog.check_day_start(3, batteries);
    FAIL() << "a NaN SoC must abort";
  } catch (const obs::WatchdogError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("run-health watchdog aborted"), std::string::npos) << msg;
    EXPECT_NE(msg.find("finite_state"), std::string::npos) << msg;
    EXPECT_NE(msg.find("node 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("value=nan"), std::string::npos) << msg;
  }
  EXPECT_TRUE(dog.tripped());
  obs::global_registry().reset();
}

TEST(Watchdog, SocEscapeIsFatalButUlpSlackIsNot) {
  obs::global_registry().reset();
  {
    sim::Watchdog dog{sim::WatchdogParams{}, 2};
    auto batteries = two_batteries();
    batteries[0].debug_set_soc(1.0 + 1e-12);  // fast-math ulp slop: allowed
    EXPECT_NO_THROW(dog.check_day_start(0, batteries));
  }
  {
    sim::Watchdog dog{sim::WatchdogParams{}, 2};
    auto batteries = two_batteries();
    batteries[0].debug_set_soc(1.05);  // genuine escape: fatal
    EXPECT_THROW(dog.check_day_start(0, batteries), obs::WatchdogError);
  }
  obs::global_registry().reset();
}

TEST(Watchdog, EnergyImbalanceScoresAnErrorPerTick) {
  obs::global_registry().reset();
  sim::Watchdog dog{sim::WatchdogParams{}, 2};
  auto batteries = two_batteries();
  power::RouteResult bad = balanced_route(2);
  bad.nodes[0].utility_used = util::watts(10.0);  // 30 W of demand vanishes
  dog.check_tick(0, bad, batteries);
  EXPECT_DOUBLE_EQ(dog.log().score(), 10.0);
  ASSERT_EQ(dog.log().incidents().size(), 1u);
  EXPECT_EQ(dog.log().incidents()[0].check, "energy_balance");
  EXPECT_NEAR(dog.log().incidents()[0].value, 30.0, 1e-9);
  obs::global_registry().reset();
}

TEST(Watchdog, RepeatedErrorsEscalateToFatalScoreAbort) {
  obs::global_registry().reset();
  sim::WatchdogParams params;
  params.fatal_score = 50.0;  // 5 errors
  sim::Watchdog dog{params, 2};
  auto batteries = two_batteries();
  power::RouteResult bad = balanced_route(2);
  bad.nodes[1].unmet = util::watts(-25.0);
  for (int tick = 0; tick < 4; ++tick) dog.check_tick(0, bad, batteries);
  EXPECT_FALSE(dog.tripped());
  EXPECT_THROW(dog.check_tick(0, bad, batteries), obs::WatchdogError);
  EXPECT_TRUE(dog.tripped());
  obs::global_registry().reset();
}

TEST(Watchdog, SohHealBeyondAllowanceIsAnError) {
  obs::global_registry().reset();
  sim::Watchdog dog{sim::WatchdogParams{}, 1};
  std::vector<battery::Battery> b;
  b.emplace_back(battery::LeadAcidParams{}, battery::AgingParams{},
                 battery::ThermalParams{}, 1.0, 1.0, 0.8);
  // Day 0 pins prev_health at the pre-aged value; an impossible healing jump
  // the next day must be flagged.
  battery::AgingState aged;
  aged.sulphation = 0.15;
  b[0].set_aging_state(aged);
  sim::DayResult day;
  day.throughput_work = 1.0;
  dog.check_day_end(0, day, b);
  EXPECT_DOUBLE_EQ(dog.log().score(), 0.0);

  b[0].set_aging_state(battery::AgingState{});  // capacity magically returns
  dog.check_day_end(1, day, b);
  ASSERT_EQ(dog.log().incidents().size(), 1u);
  EXPECT_EQ(dog.log().incidents()[0].check, "soh_monotone");
  obs::global_registry().reset();
}

TEST(Watchdog, StallWarnsOnceAfterConsecutiveZeroDays) {
  obs::global_registry().reset();
  sim::WatchdogParams params;
  params.stall_days = 3;
  sim::Watchdog dog{params, 2};
  auto batteries = two_batteries();
  sim::DayResult idle;
  idle.throughput_work = 0.0;
  sim::DayResult busy;
  busy.throughput_work = 4.0;

  dog.check_day_end(0, idle, batteries);
  dog.check_day_end(1, idle, batteries);
  EXPECT_EQ(dog.log().count(), 0u);
  dog.check_day_end(2, idle, batteries);  // third consecutive: one warn
  EXPECT_EQ(dog.log().count(), 1u);
  EXPECT_EQ(dog.log().incidents()[0].check, "stall");
  dog.check_day_end(3, idle, batteries);  // run continues, no re-warn
  EXPECT_EQ(dog.log().count(), 1u);
  dog.check_day_end(4, busy, batteries);  // recovery resets the streak
  dog.check_day_end(5, idle, batteries);
  dog.check_day_end(6, idle, batteries);
  EXPECT_EQ(dog.log().count(), 1u);
  obs::global_registry().reset();
}

TEST(Watchdog, DisabledWatchdogIsInert) {
  obs::global_registry().reset();
  sim::WatchdogParams params;
  params.enabled = false;
  sim::Watchdog dog{params, 2};
  auto batteries = two_batteries();
  batteries[0].debug_set_soc(std::numeric_limits<double>::quiet_NaN());
  EXPECT_NO_THROW(dog.check_day_start(0, batteries));
  EXPECT_EQ(dog.log().count(), 0u);
  obs::global_registry().reset();
}

TEST(Watchdog, SnapshotRoundTripKeepsStreaksAndLog) {
  obs::global_registry().reset();
  sim::WatchdogParams params;
  params.stall_days = 3;
  sim::Watchdog dog{params, 2};
  auto batteries = two_batteries();
  sim::DayResult idle;
  idle.throughput_work = 0.0;
  dog.check_day_end(0, idle, batteries);
  dog.check_day_end(1, idle, batteries);  // streak = 2, one day from warning

  snapshot::SnapshotWriter w;
  dog.save_state(w);
  sim::Watchdog restored{params, 2};
  snapshot::SnapshotReader r{w.bytes()};
  restored.load_state(r);

  restored.check_day_end(2, idle, batteries);  // streak continues seamlessly
  EXPECT_EQ(restored.log().count(), 1u);
  EXPECT_EQ(restored.log().incidents()[0].check, "stall");
  obs::global_registry().reset();
}

}  // namespace
}  // namespace baat
