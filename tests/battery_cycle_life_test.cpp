#include <gtest/gtest.h>

#include "battery/cycle_life.hpp"
#include "util/require.hpp"

namespace baat::battery {
namespace {

using util::ampere_hours;

TEST(CycleLife, MoreCyclesAtShallowerDepth) {
  const CycleLifeCurve c = curve_for(Manufacturer::Trojan);
  EXPECT_GT(c.cycles(0.2), c.cycles(0.5));
  EXPECT_GT(c.cycles(0.5), c.cycles(1.0));
}

TEST(CycleLife, RatedCyclesAtFullDepth) {
  EXPECT_DOUBLE_EQ(curve_for(Manufacturer::Trojan).cycles(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(curve_for(Manufacturer::Hoppecke).cycles(1.0), 1400.0);
  EXPECT_DOUBLE_EQ(curve_for(Manufacturer::UPG).cycles(1.0), 450.0);
}

// The Fig 10 headline: cycling above 50% DoD halves cycle life relative to
// shallow cycling — for every manufacturer.
class HalfLifeAboveFiftyDod : public ::testing::TestWithParam<Manufacturer> {};

TEST_P(HalfLifeAboveFiftyDod, HoldsForManufacturer) {
  const CycleLifeCurve c = curve_for(GetParam());
  EXPECT_LE(c.cycles(0.5), 0.55 * c.cycles(0.25));
}

INSTANTIATE_TEST_SUITE_P(AllManufacturers, HalfLifeAboveFiftyDod,
                         ::testing::Values(Manufacturer::Hoppecke, Manufacturer::Trojan,
                                           Manufacturer::UPG));

TEST(CycleLife, SaturatesBelowDodMin) {
  const CycleLifeCurve c = curve_for(Manufacturer::Trojan);
  EXPECT_DOUBLE_EQ(c.cycles(0.01), c.cycles(c.dod_min));
}

TEST(CycleLife, LifetimeThroughputNearlyConstantForUnityExponent) {
  // §III-A cites the "total cycled charge is almost constant" observation;
  // with exponent ≈ 1 the lifetime Ah barely depends on DoD.
  CycleLifeCurve c{1000.0, 1.0, 0.05};
  const auto cap = ampere_hours(35.0);
  const double t20 = c.lifetime_throughput(0.2, cap).value();
  const double t80 = c.lifetime_throughput(0.8, cap).value();
  EXPECT_NEAR(t20, t80, 1e-9);
}

TEST(CycleLife, DeepCyclingWastesThroughputForRealCurves) {
  const CycleLifeCurve c = curve_for(Manufacturer::UPG);  // exponent > 1
  const auto cap = ampere_hours(35.0);
  EXPECT_GT(c.lifetime_throughput(0.2, cap).value(),
            c.lifetime_throughput(0.9, cap).value());
}

TEST(CycleLife, DamageFractionLinearInThroughput) {
  const CycleLifeCurve c = curve_for(Manufacturer::Trojan);
  const auto cap = ampere_hours(35.0);
  const double d1 = c.damage_fraction(ampere_hours(1000.0), 0.5, cap);
  const double d2 = c.damage_fraction(ampere_hours(2000.0), 0.5, cap);
  EXPECT_NEAR(d2, 2.0 * d1, 1e-12);
}

TEST(CycleLife, FullLifeEqualsUnityDamage) {
  const CycleLifeCurve c = curve_for(Manufacturer::Hoppecke);
  const auto cap = ampere_hours(35.0);
  const auto life = c.lifetime_throughput(0.6, cap);
  EXPECT_NEAR(c.damage_fraction(life, 0.6, cap), 1.0, 1e-12);
}

TEST(CycleLife, RejectsBadInput) {
  const CycleLifeCurve c = curve_for(Manufacturer::Trojan);
  EXPECT_THROW(c.cycles(0.0), util::PreconditionError);
  EXPECT_THROW(c.cycles(1.5), util::PreconditionError);
  EXPECT_THROW(c.lifetime_throughput(0.5, ampere_hours(0.0)), util::PreconditionError);
  EXPECT_THROW(c.damage_fraction(ampere_hours(-1.0), 0.5, ampere_hours(35.0)),
               util::PreconditionError);
}

TEST(CycleLife, ManufacturerNames) {
  EXPECT_EQ(manufacturer_name(Manufacturer::Hoppecke), "Hoppecke");
  EXPECT_EQ(manufacturer_name(Manufacturer::Trojan), "Trojan");
  EXPECT_EQ(manufacturer_name(Manufacturer::UPG), "UPG");
}

}  // namespace
}  // namespace baat::battery
