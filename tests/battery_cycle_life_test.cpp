#include <gtest/gtest.h>

#include <cmath>

#include "battery/chemistry_model.hpp"
#include "battery/ledger.hpp"
#include "battery/rainflow.hpp"
#include "battery/cycle_life.hpp"
#include "util/require.hpp"

namespace baat::battery {
namespace {

using util::ampere_hours;

TEST(CycleLife, MoreCyclesAtShallowerDepth) {
  const CycleLifeCurve c = curve_for(Manufacturer::Trojan);
  EXPECT_GT(c.cycles(0.2), c.cycles(0.5));
  EXPECT_GT(c.cycles(0.5), c.cycles(1.0));
}

TEST(CycleLife, RatedCyclesAtFullDepth) {
  EXPECT_DOUBLE_EQ(curve_for(Manufacturer::Trojan).cycles(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(curve_for(Manufacturer::Hoppecke).cycles(1.0), 1400.0);
  EXPECT_DOUBLE_EQ(curve_for(Manufacturer::UPG).cycles(1.0), 450.0);
}

// The Fig 10 headline: cycling above 50% DoD halves cycle life relative to
// shallow cycling — for every manufacturer.
class HalfLifeAboveFiftyDod : public ::testing::TestWithParam<Manufacturer> {};

TEST_P(HalfLifeAboveFiftyDod, HoldsForManufacturer) {
  const CycleLifeCurve c = curve_for(GetParam());
  EXPECT_LE(c.cycles(0.5), 0.55 * c.cycles(0.25));
}

INSTANTIATE_TEST_SUITE_P(AllManufacturers, HalfLifeAboveFiftyDod,
                         ::testing::Values(Manufacturer::Hoppecke, Manufacturer::Trojan,
                                           Manufacturer::UPG));

TEST(CycleLife, SaturatesBelowDodMin) {
  const CycleLifeCurve c = curve_for(Manufacturer::Trojan);
  EXPECT_DOUBLE_EQ(c.cycles(0.01), c.cycles(c.dod_min));
}

TEST(CycleLife, LifetimeThroughputNearlyConstantForUnityExponent) {
  // §III-A cites the "total cycled charge is almost constant" observation;
  // with exponent ≈ 1 the lifetime Ah barely depends on DoD.
  CycleLifeCurve c{1000.0, 1.0, 0.05};
  const auto cap = ampere_hours(35.0);
  const double t20 = c.lifetime_throughput(0.2, cap).value();
  const double t80 = c.lifetime_throughput(0.8, cap).value();
  EXPECT_NEAR(t20, t80, 1e-9);
}

TEST(CycleLife, DeepCyclingWastesThroughputForRealCurves) {
  const CycleLifeCurve c = curve_for(Manufacturer::UPG);  // exponent > 1
  const auto cap = ampere_hours(35.0);
  EXPECT_GT(c.lifetime_throughput(0.2, cap).value(),
            c.lifetime_throughput(0.9, cap).value());
}

TEST(CycleLife, DamageFractionLinearInThroughput) {
  const CycleLifeCurve c = curve_for(Manufacturer::Trojan);
  const auto cap = ampere_hours(35.0);
  const double d1 = c.damage_fraction(ampere_hours(1000.0), 0.5, cap);
  const double d2 = c.damage_fraction(ampere_hours(2000.0), 0.5, cap);
  EXPECT_NEAR(d2, 2.0 * d1, 1e-12);
}

TEST(CycleLife, FullLifeEqualsUnityDamage) {
  const CycleLifeCurve c = curve_for(Manufacturer::Hoppecke);
  const auto cap = ampere_hours(35.0);
  const auto life = c.lifetime_throughput(0.6, cap);
  EXPECT_NEAR(c.damage_fraction(life, 0.6, cap), 1.0, 1e-12);
}

TEST(CycleLife, RejectsBadInput) {
  const CycleLifeCurve c = curve_for(Manufacturer::Trojan);
  EXPECT_THROW(c.cycles(0.0), util::PreconditionError);
  EXPECT_THROW(c.cycles(1.5), util::PreconditionError);
  EXPECT_THROW(c.lifetime_throughput(0.5, ampere_hours(0.0)), util::PreconditionError);
  EXPECT_THROW(c.damage_fraction(ampere_hours(-1.0), 0.5, ampere_hours(35.0)),
               util::PreconditionError);
}

// --- tabulated curves (the Li-ion presets) ---------------------------------

TEST(CycleLife, TabulatedHitsPointsAndInterpolatesMonotonically) {
  CycleLifeCurve c{1000.0, 1.1, 0.01, {}};
  c.points = {{0.1, 100000.0}, {0.5, 2000.0}, {1.0, 500.0}};
  EXPECT_NEAR(c.cycles(0.1), 100000.0, 1e-6);
  EXPECT_NEAR(c.cycles(0.5), 2000.0, 1e-6);
  EXPECT_NEAR(c.cycles(1.0), 500.0, 1e-6);
  EXPECT_LT(c.cycles(0.3), c.cycles(0.1));
  EXPECT_GT(c.cycles(0.3), c.cycles(0.5));
}

TEST(CycleLife, TabulatedExtrapolatesBelowSmallestDod) {
  // Below the first tabulated point the first segment's log-log slope is
  // extended outward: a shallower cycle must always earn MORE cycles (so a
  // micro-cycle's Miner damage is small but strictly positive, never zero —
  // the extrapolation bug class this pins down).
  CycleLifeCurve c{1000.0, 1.1, 0.01, {}};
  c.points = {{0.1, 100000.0}, {0.5, 2000.0}, {1.0, 500.0}};
  const double n = c.cycles(0.02);
  EXPECT_TRUE(std::isfinite(n));
  EXPECT_GT(n, c.cycles(0.1));
  EXPECT_GT(1.0 / n, 0.0);  // the damage per counted cycle
  // dod_min still saturates the very shallowest swings.
  EXPECT_DOUBLE_EQ(c.cycles(0.005), c.cycles(c.dod_min));
}

TEST(CycleLife, TabulatedExtrapolatesAboveLargestDodClampedAtOneCycle) {
  // A table that stops short of 100% DoD extrapolates on the last segment's
  // slope; a brutally steep table would go below one cycle (infinite or
  // even negative damage per cycle after a sign slip) — the >= 1 clamp
  // keeps Miner damage per counted cycle bounded by its count.
  CycleLifeCurve steep{1000.0, 1.1, 0.01, {}};
  steep.points = {{0.05, 50.0}, {0.1, 10.0}};
  EXPECT_DOUBLE_EQ(steep.cycles(1.0), 1.0);
  CycleLifeCurve gentle{1000.0, 1.1, 0.01, {}};
  gentle.points = {{0.1, 100000.0}, {0.5, 2000.0}};
  const double n = gentle.cycles(0.9);
  EXPECT_TRUE(std::isfinite(n));
  EXPECT_GE(n, 1.0);
  EXPECT_LT(n, gentle.cycles(0.5));
}

TEST(CycleLife, LiPresetTablesAreUsable) {
  for (Chemistry k : {Chemistry::LiNmc, Chemistry::LiLfp}) {
    const CycleLifeCurve c = chemistry_model(k).cycle_curve;
    ASSERT_FALSE(c.points.empty());
    double prev = c.cycles(c.points.front().first);
    for (std::size_t i = 1; i < c.points.size(); ++i) {
      const double n = c.cycles(c.points[i].first);
      EXPECT_LT(n, prev);
      prev = n;
    }
    EXPECT_GE(c.cycles(1.0), 1.0);
  }
}

TEST(CycleLife, MicroCyclesMatchOfflineRainflowAndAccruePositiveDamage) {
  // 200 micro-swings far below the smallest tabulated DoD of the LFP preset:
  // the online counter must agree with the offline rainflow decomposition,
  // and the accrued Miner damage must be small but strictly positive.
  const CycleLifeCurve curve = chemistry_model(Chemistry::LiLfp).cycle_curve;
  std::vector<double> series;
  series.push_back(0.5);
  for (int i = 0; i < 200; ++i) {
    series.push_back(0.52);
    series.push_back(0.50);
  }
  OnlineRainflow online(curve);
  for (double s : series) online.push(s);
  online.flush_residuals();
  const double offline = rainflow_damage(rainflow_count(series), curve);
  EXPECT_GT(offline, 0.0);
  EXPECT_LT(offline, 1e-2);
  EXPECT_NEAR(online.damage(), offline, 1e-15 + 1e-12 * offline);
}

TEST(CycleLife, ManufacturerNames) {
  EXPECT_EQ(manufacturer_name(Manufacturer::Hoppecke), "Hoppecke");
  EXPECT_EQ(manufacturer_name(Manufacturer::Trojan), "Trojan");
  EXPECT_EQ(manufacturer_name(Manufacturer::UPG), "UPG");
}

}  // namespace
}  // namespace baat::battery
