// Streamed per-day series export tests (DESIGN.md §5g): CSV/JSONL shape,
// downsampling, checkpoint/resume byte-identity of the exported file, and
// sweep worker-count independence of the per-point series files.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "sim/cli.hpp"
#include "sim/multiday.hpp"
#include "util/sim_clock.hpp"

namespace baat::sim {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in{text};
  for (std::string l; std::getline(in, l);) lines.push_back(l);
  return lines;
}

/// Fresh per-test scratch directory under the system temp root.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / ("baat_series_" + name)).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ScenarioConfig small_scenario() {
  ScenarioConfig cfg = prototype_scenario();
  cfg.nodes = 3;
  cfg.seed = 20260808;
  return cfg;
}

void reset_globals() {
  obs::set_profiling_enabled(false);
  obs::set_trace_enabled(false);
  obs::global_registry().reset();
  obs::global_trace().clear();
  util::set_sim_time(-1.0);
}

MultiDayResult run_with_series(const ScenarioConfig& cfg, std::size_t days,
                               const SeriesOptions& series,
                               const CheckpointOptions& ckpt = {}) {
  reset_globals();
  Cluster cluster{cfg};
  MultiDayOptions opts;
  opts.days = days;
  opts.sunshine_fraction = 0.5;
  opts.probe_every_days = 0;
  opts.series = series;
  opts.checkpoint = ckpt;
  return run_multi_day(cluster, opts);
}

TEST(SeriesExport, CsvHasHeaderAndOneRowPerNodePlusClusterPerDay) {
  ScratchDir dir{"csv_shape"};
  SeriesOptions series;
  series.path = dir.file("series.csv");
  const ScenarioConfig cfg = small_scenario();
  run_with_series(cfg, 4, series);

  const auto lines = lines_of(slurp(series.path));
  ASSERT_EQ(lines.size(), 1u + 4u * (cfg.nodes + 1));
  EXPECT_EQ(lines[0],
            "day,node,soc_end,soc_min,health,fade_corrosion,fade_shedding,"
            "fade_sulphation,fade_stratification,fade_water_loss,fade_total,"
            "cycle_damage,efc,low_soc_dwell_s,health_score,throughput_work");
  // Day 0's block: nodes 0..2 then the cluster rollup.
  EXPECT_EQ(lines[1].substr(0, 4), "0,0,");
  EXPECT_EQ(lines[3].substr(0, 4), "0,2,");
  EXPECT_EQ(lines[4].substr(0, 10), "0,cluster,");
  // Last block belongs to the final day.
  EXPECT_EQ(lines.back().substr(0, 10), "3,cluster,");
  // The cluster rollup rows leave the per-node-only columns empty.
  EXPECT_NE(lines[4].find("cluster,,,,"), std::string::npos);
}

TEST(SeriesExport, JsonlRowsCarryFadeBreakdown) {
  ScratchDir dir{"jsonl"};
  SeriesOptions series;
  series.path = dir.file("series.jsonl");
  run_with_series(small_scenario(), 2, series);

  const auto lines = lines_of(slurp(series.path));
  ASSERT_EQ(lines.size(), 2u * 4u);  // no header line in JSONL
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{') << l;
    EXPECT_EQ(l.back(), '}') << l;
    EXPECT_NE(l.find("\"fade\": {\"corrosion\": "), std::string::npos) << l;
    EXPECT_NE(l.find("\"cycle_damage\": "), std::string::npos) << l;
  }
  EXPECT_NE(lines[0].find("\"node\": \"0\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"node\": \"cluster\""), std::string::npos);
}

TEST(SeriesExport, EveryNthDayDownsamples) {
  ScratchDir dir{"downsample"};
  SeriesOptions series;
  series.path = dir.file("series.csv");
  series.every = 3;
  run_with_series(small_scenario(), 7, series);

  // Emission days are those with (day+1) % 3 == 0: days 2 and 5.
  const auto lines = lines_of(slurp(series.path));
  ASSERT_EQ(lines.size(), 1u + 2u * 4u);
  EXPECT_EQ(lines[1].substr(0, 2), "2,");
  EXPECT_EQ(lines[5].substr(0, 2), "5,");
  // Deltas now cover three-day windows: the day-5 cluster row still carries
  // positive EFC (column 13 of the rollup), proving ledger_advance only runs
  // on emission days.
  EXPECT_EQ(lines.back().substr(0, 10), "5,cluster,");
}

TEST(SeriesExport, ResumeReproducesTheFileByteForByte) {
  ScratchDir dir{"resume"};
  const ScenarioConfig cfg = small_scenario();

  SeriesOptions series;
  series.path = dir.file("uninterrupted.csv");
  run_with_series(cfg, 6, series);
  const std::string reference = slurp(series.path);

  // Checkpointed run: writes rows for all 6 days AND a day-3 snapshot.
  SeriesOptions ck_series;
  ck_series.path = dir.file("resumed.csv");
  CheckpointOptions ckpt;
  ckpt.every_days = 3;
  ckpt.dir = dir.path();
  run_with_series(cfg, 6, ck_series, ckpt);
  EXPECT_EQ(slurp(ck_series.path), reference);

  // Resume from day 3: load_state must truncate the "interrupted" file's
  // extra rows (simulated by scribbling on it) and replay to byte-identity.
  {
    std::ofstream scribble{ck_series.path, std::ios::binary | std::ios::app};
    scribble << "999,junk,rows,from,the,interrupted,process\n";
  }
  CheckpointOptions resume;
  resume.resume_path = dir.path() + "/checkpoint-day-3.snap";
  run_with_series(cfg, 6, ck_series, resume);
  EXPECT_EQ(slurp(ck_series.path), reference);
}

TEST(SeriesExport, JsonlResumeIsAlsoByteIdentical) {
  ScratchDir dir{"resume_jsonl"};
  const ScenarioConfig cfg = small_scenario();

  SeriesOptions series;
  series.path = dir.file("a.jsonl");
  run_with_series(cfg, 4, series);
  const std::string reference = slurp(series.path);

  SeriesOptions ck_series;
  ck_series.path = dir.file("b.jsonl");
  CheckpointOptions ckpt;
  ckpt.every_days = 2;
  ckpt.dir = dir.path();
  run_with_series(cfg, 4, ck_series, ckpt);

  CheckpointOptions resume;
  resume.resume_path = dir.path() + "/checkpoint-day-2.snap";
  run_with_series(cfg, 4, ck_series, resume);
  EXPECT_EQ(slurp(ck_series.path), reference);
}

// ---------------------------------------------------------------------------
// Sweep worker-count independence: the per-point series files, the sweep
// CSV and the run's outputs must be byte-identical at --jobs 1 vs --jobs 8,
// clean and faulted.
// ---------------------------------------------------------------------------

struct SweepArtifacts {
  std::vector<std::string> series;  ///< one per sweep point
  std::string csv;
  bool operator==(const SweepArtifacts&) const = default;
};

SweepArtifacts run_sweep_cli(const ScratchDir& dir, const std::string& tag,
                             std::size_t jobs, const std::string& fault_spec) {
  reset_globals();
  CliOptions o;
  o.days = 2;
  o.nodes = 3;
  o.sweep_sunshine = {0.3, 0.8};
  o.jobs = jobs;
  o.series_path = dir.file(tag + ".csv");
  o.csv_path = dir.file(tag + "-summary.csv");
  if (!fault_spec.empty()) o.faults = fault::parse_fault_plan(fault_spec);
  EXPECT_EQ(run_cli(o), 0);

  SweepArtifacts a;
  for (std::size_t i = 0; i < o.sweep_sunshine.size(); ++i) {
    a.series.push_back(slurp(dir.file(tag + "-point-" + std::to_string(i) + ".csv")));
    EXPECT_FALSE(a.series.back().empty());
  }
  a.csv = slurp(o.csv_path);
  return a;
}

TEST(SeriesExport, SweepWorkerCountNeverChangesSeriesBytes) {
  ScratchDir dir{"sweep_clean"};
  const SweepArtifacts serial = run_sweep_cli(dir, "serial", 1, "");
  const SweepArtifacts parallel = run_sweep_cli(dir, "parallel", 8, "");
  EXPECT_EQ(serial.series, parallel.series);
  EXPECT_EQ(serial.csv, parallel.csv);
  // The two points saw different weather, so their ledgers must differ.
  EXPECT_NE(serial.series[0], serial.series[1]);
}

TEST(SeriesExport, FaultedSweepWorkerCountNeverChangesSeriesBytes) {
  ScratchDir dir{"sweep_faulted"};
  const char* spec = "sensor_noise:soc:0.03,pv_derate:factor=0.8";
  const SweepArtifacts serial = run_sweep_cli(dir, "serial", 1, spec);
  const SweepArtifacts parallel = run_sweep_cli(dir, "parallel", 8, spec);
  EXPECT_EQ(serial.series, parallel.series);
  EXPECT_EQ(serial.csv, parallel.csv);
}

}  // namespace
}  // namespace baat::sim
