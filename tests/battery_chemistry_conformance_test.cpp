// Chemistry-model conformance suite (DESIGN.md §5i): every chemistry the
// fleet kernel can host — lead-acid, Li-ion NMC, Li-ion LFP and the cheap
// energy bucket — must satisfy the same cross-model contracts in every math
// tier: SoC stays in [0,1], the OCV curve is strictly increasing, energy
// out never exceeds energy in plus what was initially stored, the
// aging-attribution ledger's per-mechanism parts reproduce the kernel's
// total fade, and a save/load round trip is bit-identical under continued
// stepping. The suite runs under the `chemistry` ctest label in both the
// Release and sanitizer CI shards.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <tuple>
#include <vector>

#include "battery/chemistry_model.hpp"
#include "battery/fleet.hpp"
#include "battery/thermal.hpp"
#include "snapshot/serialize.hpp"

namespace baat::battery {
namespace {

using util::Amperes;
using util::Seconds;

constexpr Chemistry kAllChemistries[] = {Chemistry::LeadAcid, Chemistry::LiNmc,
                                         Chemistry::LiLfp, Chemistry::Bucket};
constexpr MathMode kAllMath[] = {MathMode::Exact, MathMode::Fast, MathMode::Simd};

constexpr std::size_t kCells = 4;
const Seconds kDt{60.0};

FleetState make_fleet(Chemistry kind, MathMode math) {
  const ChemistryModel model = chemistry_model(kind);
  FleetState fleet{model, ThermalParams{}, math};
  for (std::size_t c = 0; c < kCells; ++c) {
    fleet.add_cell(1.0 - 0.02 * static_cast<double>(c),
                   1.0 + 0.03 * static_cast<double>(c), 1.0);
  }
  fleet.set_ledger_enabled(true);
  return fleet;
}

/// Day-shaped duty cycle, detuned per cell: night discharge, midday charge,
/// evening discharge. Amperes are modest relative to the ~35 Ah presets so
/// every chemistry survives the pattern without pinning at the rails.
double requested_amps(long tick, std::size_t cell) {
  const long phase = tick % 1440;
  const double detune = 0.2 * static_cast<double>(cell);
  if (phase < 480) return 3.0 + detune;
  if (phase < 1080) return -(6.0 + detune);
  return 1.5 + detune;
}

class ChemistryConformance
    : public ::testing::TestWithParam<std::tuple<Chemistry, MathMode>> {};

TEST_P(ChemistryConformance, SocStaysInUnitRange) {
  const auto [kind, math] = GetParam();
  FleetState fleet = make_fleet(kind, math);
  for (long tick = 0; tick < 3000; ++tick) {
    for (std::size_t c = 0; c < kCells; ++c) {
      fleet.step_cell(c, Amperes{requested_amps(tick, c)}, kDt);
      const double soc = fleet.cell_soc(c);
      ASSERT_GE(soc, -1e-9) << "tick " << tick << " cell " << c;
      ASSERT_LE(soc, 1.0 + 1e-9) << "tick " << tick << " cell " << c;
      ASSERT_FALSE(std::isnan(soc)) << "tick " << tick << " cell " << c;
    }
  }
}

TEST_P(ChemistryConformance, OcvStrictlyIncreasing) {
  const auto [kind, math] = GetParam();
  (void)math;  // the OCV curve is math-tier independent
  const ChemistryModel model = chemistry_model(kind);
  double prev = open_circuit_voltage(model.electrical, 0.0, model.ocv).value();
  for (int i = 1; i <= 200; ++i) {
    const double v =
        open_circuit_voltage(model.electrical, i / 200.0, model.ocv).value();
    ASSERT_GT(v, prev) << chemistry_name(kind) << " at soc " << i / 200.0;
    prev = v;
  }
}

TEST_P(ChemistryConformance, EnergyBalanceNeverCreatesEnergy) {
  const auto [kind, math] = GetParam();
  FleetState fleet = make_fleet(kind, math);
  std::vector<double> initial(kCells);
  for (std::size_t c = 0; c < kCells; ++c) {
    initial[c] = fleet.cell_stored_energy_above(c, 0.0).value();
  }
  for (long tick = 0; tick < 3000; ++tick) {
    for (std::size_t c = 0; c < kCells; ++c) {
      fleet.step_cell(c, Amperes{requested_amps(tick, c)}, kDt);
    }
  }
  for (std::size_t c = 0; c < kCells; ++c) {
    const UsageCounters& u = fleet.cell_counters(c);
    EXPECT_LE(u.energy_discharged.value(),
              u.energy_charged.value() + initial[c] + 1e-6)
        << chemistry_name(kind) << " cell " << c;
  }
}

TEST_P(ChemistryConformance, LedgerPartsReproduceTotalFade) {
  const auto [kind, math] = GetParam();
  FleetState fleet = make_fleet(kind, math);
  for (long tick = 0; tick < 3000; ++tick) {
    for (std::size_t c = 0; c < kCells; ++c) {
      fleet.step_cell(c, Amperes{requested_amps(tick, c)}, kDt);
    }
  }
  const MechanismAxis axis = mechanism_axis(kind);
  for (std::size_t c = 0; c < kCells; ++c) {
    const CellLedgerEntry total = fleet.ledger_total(c);
    // The attribution must reproduce the kernel's own fade number.
    EXPECT_NEAR(total.fade.total(), 1.0 - fleet.cell_health(c), 1e-9)
        << chemistry_name(kind) << " cell " << c;
    // ...and the per-mechanism columns the axis exposes must sum to it: no
    // fade may hide in a slot the chemistry's axis does not report.
    const double slots[5] = {total.fade.corrosion, total.fade.shedding,
                             total.fade.sulphation, total.fade.stratification,
                             total.fade.water_loss};
    double reported = 0.0;
    for (std::size_t i = 0; i < axis.count; ++i) reported += slots[i];
    EXPECT_NEAR(reported, total.fade.total(), 1e-15)
        << chemistry_name(kind) << " cell " << c;
    EXPECT_GT(total.fade.total(), 0.0) << chemistry_name(kind) << " cell " << c;
  }
}

TEST_P(ChemistryConformance, SaveLoadBitIdenticalUnderContinuedStepping) {
  const auto [kind, math] = GetParam();
  FleetState live = make_fleet(kind, math);
  for (long tick = 0; tick < 1500; ++tick) {
    for (std::size_t c = 0; c < kCells; ++c) {
      live.step_cell(c, Amperes{requested_amps(tick, c)}, kDt);
    }
  }
  snapshot::SnapshotWriter mid;
  live.save_state(mid);

  FleetState restored = make_fleet(kind, math);
  snapshot::SnapshotReader r{mid.bytes()};
  restored.load_state(r);

  for (long tick = 1500; tick < 3000; ++tick) {
    for (std::size_t c = 0; c < kCells; ++c) {
      const Amperes amps{requested_amps(tick, c)};
      const StepResult a = live.step_cell(c, amps, kDt);
      const StepResult b = restored.step_cell(c, amps, kDt);
      ASSERT_EQ(a.actual_current.value(), b.actual_current.value())
          << "tick " << tick << " cell " << c;
      ASSERT_EQ(a.terminal_voltage.value(), b.terminal_voltage.value())
          << "tick " << tick << " cell " << c;
    }
  }
  snapshot::SnapshotWriter wa;
  snapshot::SnapshotWriter wb;
  live.save_state(wa);
  restored.save_state(wb);
  EXPECT_EQ(wa.bytes(), wb.bytes()) << chemistry_name(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllChemistriesAllTiers, ChemistryConformance,
    ::testing::Combine(::testing::ValuesIn(kAllChemistries),
                       ::testing::ValuesIn(kAllMath)),
    [](const ::testing::TestParamInfo<std::tuple<Chemistry, MathMode>>& info) {
      const Chemistry kind = std::get<0>(info.param);
      const MathMode math = std::get<1>(info.param);
      std::string name{chemistry_name(kind)};
      name += math == MathMode::Exact ? "_exact"
              : math == MathMode::Fast ? "_fast"
                                       : "_simd";
      return name;
    });

// A snapshot taken under one chemistry must refuse to load into a fleet
// hosting another — with an error naming both, not a garbled state. The
// scenario fingerprint catches this earlier at the CLI layer; this is the
// fleet-level defence for direct snapshot consumers.
TEST(ChemistrySnapshot, MismatchedChemistryRefused) {
  FleetState li = make_fleet(Chemistry::LiNmc, MathMode::Exact);
  snapshot::SnapshotWriter w;
  li.save_state(w);

  FleetState lead = make_fleet(Chemistry::LeadAcid, MathMode::Exact);
  snapshot::SnapshotReader r{w.bytes()};
  EXPECT_THROW(lead.load_state(r), snapshot::SnapshotError);

  snapshot::SnapshotWriter wl;
  lead.save_state(wl);
  FleetState li2 = make_fleet(Chemistry::LiNmc, MathMode::Exact);
  snapshot::SnapshotReader rl{wl.bytes()};
  EXPECT_THROW(li2.load_state(rl), snapshot::SnapshotError);

  // Li -> Li of a different kind must also refuse.
  FleetState lfp = make_fleet(Chemistry::LiLfp, MathMode::Exact);
  snapshot::SnapshotReader r2{w.bytes()};
  EXPECT_THROW(lfp.load_state(r2), snapshot::SnapshotError);
}

// Fast and Simd tiers route Li and bucket chemistries through the same
// scalar kernel (the SIMD lane kernel is lead-acid-only), so their
// trajectories must coincide exactly.
TEST(ChemistryConformanceExtra, LiFastAndSimdTrajectoriesCoincide) {
  for (Chemistry kind : {Chemistry::LiNmc, Chemistry::LiLfp, Chemistry::Bucket}) {
    FleetState fast = make_fleet(kind, MathMode::Fast);
    FleetState simd = make_fleet(kind, MathMode::Simd);
    for (long tick = 0; tick < 1000; ++tick) {
      for (std::size_t c = 0; c < kCells; ++c) {
        const Amperes amps{requested_amps(tick, c)};
        const StepResult a = fast.step_cell(c, amps, kDt);
        const StepResult b = simd.step_cell(c, amps, kDt);
        ASSERT_EQ(a.terminal_voltage.value(), b.terminal_voltage.value())
            << chemistry_name(kind) << " tick " << tick;
      }
    }
  }
}

}  // namespace
}  // namespace baat::battery
