#include <gtest/gtest.h>

#include <sstream>

#include "obs/obs.hpp"
#include "util/sim_clock.hpp"

namespace baat::obs {
namespace {

TraceEvent make_event(double ts, EventKind kind, int node = -1, double value = 0.0,
                      std::string detail = {}) {
  TraceEvent e;
  e.ts = ts;
  e.day = static_cast<long>(ts / 86400.0);
  e.kind = kind;
  e.node = node;
  e.value = value;
  e.detail = std::move(detail);
  return e;
}

/// Minimal JSON structure check: balanced braces/brackets outside string
/// literals, with escape handling. Not a full parser, but catches every
/// class of breakage a writer bug can produce (unescaped quotes, truncated
/// arrays, stray commas in keys, ...).
bool json_balanced(const std::string& s) {
  int brace = 0;
  int bracket = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      default: break;
    }
    if (brace < 0 || bracket < 0) return false;
  }
  return brace == 0 && bracket == 0 && !in_string;
}

TEST(Trace, RingBoundEvictsOldest) {
  TraceBuffer buf{4};
  for (int i = 0; i < 10; ++i) {
    buf.push(make_event(static_cast<double>(i), EventKind::JobDeploy, i));
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.capacity(), 4u);
  EXPECT_EQ(buf.dropped(), 6u);
  const auto evs = buf.events();
  ASSERT_EQ(evs.size(), 4u);
  // The most recent four, oldest → newest.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(evs[static_cast<std::size_t>(i)].ts, 6.0 + i);
    EXPECT_EQ(evs[static_cast<std::size_t>(i)].node, 6 + i);
  }
}

TEST(Trace, PreservesOrderAndFieldsBeforeWrap) {
  TraceBuffer buf{100};
  buf.push(make_event(1.0, EventKind::DayStart, -1, 0.0, "Sunny"));
  buf.push(make_event(2.0, EventKind::LowSocEnter, 3, 0.39));
  EXPECT_EQ(buf.dropped(), 0u);
  const auto evs = buf.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].kind, EventKind::DayStart);
  EXPECT_EQ(evs[0].detail, "Sunny");
  EXPECT_EQ(evs[1].node, 3);
  EXPECT_DOUBLE_EQ(evs[1].value, 0.39);
}

TEST(Trace, EmitRespectsEnabledFlagAndSimClock) {
  global_trace().set_capacity(16);
  set_trace_enabled(false);
  emit(EventKind::Brownout, 1, 50.0);
  EXPECT_EQ(global_trace().size(), 0u);

  set_trace_enabled(true);
  util::set_sim_time(3.0 * 86400.0 + 123.0);
  emit(EventKind::Brownout, 1, 50.0);
  set_trace_enabled(false);
  util::set_sim_time(-1.0);

  ASSERT_EQ(global_trace().size(), 1u);
  const TraceEvent e = global_trace().events()[0];
  EXPECT_DOUBLE_EQ(e.ts, 3.0 * 86400.0 + 123.0);
  EXPECT_EQ(e.day, 3);
  EXPECT_EQ(e.kind, EventKind::Brownout);
  global_trace().clear();
}

TEST(Trace, SetCapacityClears) {
  TraceBuffer buf{2};
  buf.push(make_event(0.0, EventKind::DayStart));
  buf.push(make_event(1.0, EventKind::DayEnd));
  buf.push(make_event(2.0, EventKind::DayStart));
  EXPECT_EQ(buf.dropped(), 1u);
  buf.set_capacity(8);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_EQ(buf.capacity(), 8u);
}

TEST(Trace, ClearKeepsSlotsAndRestartsCleanly) {
  // clear() is the per-tick-friendly reset: it must drop the logical
  // contents (size, head, dropped counter) without invalidating later use —
  // events pushed afterwards come back exactly, in order.
  TraceBuffer buf{4};
  for (int i = 0; i < 6; ++i) {
    buf.push(make_event(static_cast<double>(i), EventKind::DayStart, i));
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 2u);
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_TRUE(buf.events().empty());
  buf.push(make_event(10.0, EventKind::JobDeploy, 1, 1.5, "alpha"));
  buf.push(make_event(11.0, EventKind::Migration, 2, 2.5, "beta"));
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts, 10.0);
  EXPECT_EQ(events[0].node, 1);
  EXPECT_EQ(events[0].detail, "alpha");
  EXPECT_EQ(events[1].ts, 11.0);
  EXPECT_EQ(events[1].detail, "beta");
}

TEST(Trace, SlotReuseAfterClearPreservesRingSemantics) {
  // Fill past capacity after a clear: eviction order and the dropped
  // counter must behave exactly as on a fresh buffer.
  TraceBuffer buf{3};
  for (int i = 0; i < 5; ++i) {
    buf.push(make_event(static_cast<double>(i), EventKind::DayStart, i));
  }
  buf.clear();
  for (int i = 100; i < 105; ++i) {
    buf.push(make_event(static_cast<double>(i), EventKind::DayEnd, i));
  }
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.dropped(), 2u);
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].node, 102);  // oldest surviving
  EXPECT_EQ(events[1].node, 103);
  EXPECT_EQ(events[2].node, 104);
}

TEST(Trace, EmitReusesSlotsWithoutGrowingDetail) {
  // emit() into a warm ring must not allocate per event: the detail string
  // is assigned into the reused slot's existing buffer. Observable contract:
  // a long-lived buffer cycles through shorter and longer details correctly.
  global_trace().set_capacity(2);
  set_trace_enabled(true);
  emit(EventKind::JobDeploy, 0, 1.0, "a-rather-long-first-detail-string");
  emit(EventKind::JobDeploy, 1, 2.0, "x");
  emit(EventKind::JobDeploy, 2, 3.0, "y");
  set_trace_enabled(false);
  const auto events = global_trace().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].detail, "x");
  EXPECT_EQ(events[1].detail, "y");
  global_trace().set_capacity(TraceBuffer::kDefaultCapacity);
}

TEST(Trace, JsonlExportOneObjectPerLine) {
  TraceBuffer buf{8};
  buf.push(make_event(60.0, EventKind::JobDeploy, 2, 7.0, "web"));
  buf.push(make_event(120.0, EventKind::Migration, 0, 3.0, "to node 1"));
  std::ostringstream os;
  buf.write_jsonl(os);
  std::istringstream in{os.str()};
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(json_balanced(line)) << line;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"kind\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2);
  EXPECT_NE(os.str().find("\"kind\": \"job_deploy\""), std::string::npos);
  EXPECT_NE(os.str().find("\"detail\": \"to node 1\""), std::string::npos);
}

TEST(Trace, ChromeTraceIsValidJson) {
  TraceBuffer buf{8};
  buf.push(make_event(0.0, EventKind::DayStart, -1, 0.0, "Cloudy"));
  buf.push(make_event(30600.0, EventKind::LowSocEnter, 4, 0.397));
  buf.push(make_event(30900.0, EventKind::LowSocExit, 4, 0.41));
  std::ostringstream os;
  buf.write_chrome_trace(os);
  const std::string json = os.str();

  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Instant events with microsecond timestamps on the node's track.
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 30600000000"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 5"), std::string::npos);  // node 4 → tid 5
  // Track naming metadata for the viewer.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"node 4\""), std::string::npos);
}

TEST(Trace, ExportsEscapeStrings) {
  TraceBuffer buf{4};
  buf.push(make_event(1.0, EventKind::PolicySwitch, -1, 0.0, "quote\" back\\ nl\n"));
  std::ostringstream chrome;
  buf.write_chrome_trace(chrome);
  std::ostringstream jsonl;
  buf.write_jsonl(jsonl);
  for (const std::string& json : {chrome.str(), jsonl.str()}) {
    EXPECT_TRUE(json_balanced(json)) << json;
    EXPECT_NE(json.find("quote\\\" back\\\\ nl\\n"), std::string::npos);
  }
}

TEST(Trace, EventKindNamesAreStable) {
  EXPECT_EQ(event_kind_name(EventKind::LowSocEnter), "low_soc_enter");
  EXPECT_EQ(event_kind_name(EventKind::ProbeRun), "probe_run");
  EXPECT_EQ(event_kind_name(EventKind::BatteryEol), "battery_eol");
}

}  // namespace
}  // namespace baat::obs
