#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"
#include "util/require.hpp"

namespace baat::sim {
namespace {

ScenarioConfig quick_config(core::PolicyKind policy = core::PolicyKind::EBuff) {
  ScenarioConfig cfg = prototype_scenario();
  cfg.policy = policy;
  return cfg;
}

TEST(Scenario, PrototypeDefaultsMatchPaper) {
  const ScenarioConfig cfg = prototype_scenario();
  EXPECT_EQ(cfg.nodes, 6u);  // three IBM + three HP servers
  EXPECT_DOUBLE_EQ(cfg.bank.chemistry.capacity_c20.value(), 35.0);
  EXPECT_EQ(cfg.bank.chemistry.cells, 6);  // 12 V blocks
  EXPECT_DOUBLE_EQ(cfg.day_start.value(), 8.5 * 3600.0);   // 8:30 AM
  EXPECT_DOUBLE_EQ(cfg.day_end.value(), 18.5 * 3600.0);    // 6:30 PM
  EXPECT_EQ(cfg.daily_jobs.size(), 12u);  // six workloads × 2 replicas
}

TEST(Scenario, DefaultJobsCoverAllSixWorkloads) {
  const auto jobs = default_daily_jobs(1);
  ASSERT_EQ(jobs.size(), 6u);
  for (workload::Kind k : workload::kAllKinds) {
    const bool present = std::any_of(jobs.begin(), jobs.end(),
                                     [k](const JobSpec& j) { return j.kind == k; });
    EXPECT_TRUE(present) << workload::kind_name(k);
  }
  // Arrivals are staggered, biggest footprints first (anti-fragmentation).
  EXPECT_LT(jobs[0].arrival.value(), jobs[5].arrival.value());
  EXPECT_EQ(jobs[0].kind, workload::Kind::SoftwareTesting);
}

TEST(Cluster, ConstructionBuildsFleet) {
  Cluster c{quick_config()};
  EXPECT_EQ(c.node_count(), 6u);
  EXPECT_EQ(c.days_run(), 0);
  for (const auto& b : c.batteries()) EXPECT_DOUBLE_EQ(b.soc(), 1.0);
}

TEST(Cluster, RunDayProducesCoherentResult) {
  Cluster c{quick_config()};
  const DayResult r = c.run_day(solar::DayType::Sunny);
  EXPECT_EQ(c.days_run(), 1);
  EXPECT_EQ(r.day_type, solar::DayType::Sunny);
  EXPECT_GT(r.solar_energy.value(), 5000.0);
  EXPECT_GT(r.throughput_work, 0.0);
  EXPECT_EQ(r.nodes.size(), 6u);
  EXPECT_GT(r.jobs_finished, 0);
  for (const auto& n : r.nodes) {
    EXPECT_GE(n.soc_min, 0.0);
    EXPECT_LE(n.soc_min, 1.0);
    EXPECT_GT(n.health, 0.9);
    EXPECT_GE(n.metrics_day.nat, 0.0);
  }
}

TEST(Cluster, SocHistogramAccountsAllNodeTime) {
  Cluster c{quick_config()};
  const DayResult r = c.run_day(solar::DayType::Cloudy);
  // 6 nodes × 86400 s of weighted samples.
  EXPECT_NEAR(r.soc_histogram.total_weight(), 6.0 * 86400.0, 1.0);
}

TEST(Cluster, EnergyConservationOverDay) {
  Cluster c{quick_config()};
  const DayResult r = c.run_day(solar::DayType::Cloudy);
  const auto& m = r.meter;
  // Solar is either used, stored or curtailed.
  EXPECT_NEAR(m.solar_available().value(),
              m.solar_to_load().value() + m.solar_to_charge().value() +
                  m.solar_curtailed().value(),
              1.0);
  // Pure green operation: no utility.
  EXPECT_DOUBLE_EQ(m.utility_used().value(), 0.0);
}

TEST(Cluster, CloudyDayStressesBatteries) {
  Cluster c{quick_config()};
  const DayResult sunny = c.run_day(solar::DayType::Sunny);
  Cluster c2{quick_config()};
  const DayResult cloudy = c2.run_day(solar::DayType::Cloudy);
  EXPECT_GT(cloudy.nodes[cloudy.worst_node()].ah_discharged.value(),
            sunny.nodes[sunny.worst_node()].ah_discharged.value());
}

TEST(Cluster, DeterministicForSameSeed) {
  Cluster a{quick_config()};
  Cluster b{quick_config()};
  const DayResult ra = a.run_day(solar::DayType::Cloudy);
  const DayResult rb = b.run_day(solar::DayType::Cloudy);
  EXPECT_DOUBLE_EQ(ra.throughput_work, rb.throughput_work);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(a.batteries()[i].soc(), b.batteries()[i].soc());
    EXPECT_DOUBLE_EQ(ra.nodes[i].ah_discharged.value(),
                     rb.nodes[i].ah_discharged.value());
  }
}

TEST(Cluster, SeedChangesOutcome) {
  ScenarioConfig cfg = quick_config();
  Cluster a{cfg};
  cfg.seed = 777;
  Cluster b{cfg};
  const DayResult ra = a.run_day(solar::DayType::Cloudy);
  const DayResult rb = b.run_day(solar::DayType::Cloudy);
  EXPECT_NE(ra.throughput_work, rb.throughput_work);
}

TEST(Cluster, VmsRetiredAtDayEnd) {
  Cluster c{quick_config()};
  c.run_day(solar::DayType::Sunny);
  // A second day must deploy fresh jobs and produce similar work, not
  // double-count yesterday's.
  const DayResult r2 = c.run_day(solar::DayType::Sunny);
  EXPECT_GT(r2.throughput_work, 0.0);
}

TEST(Cluster, LifeMetricsAccumulateAcrossDays) {
  Cluster c{quick_config()};
  c.run_day(solar::DayType::Cloudy);
  const double nat1 = c.life_metrics(0).nat;
  c.run_day(solar::DayType::Cloudy);
  const double nat2 = c.life_metrics(0).nat;
  EXPECT_GT(nat1, 0.0);
  EXPECT_GT(nat2, nat1);
}

TEST(Cluster, PolicySwapResetsRouterHints) {
  Cluster c{quick_config(core::PolicyKind::Baat)};
  c.run_day(solar::DayType::Cloudy);
  c.set_policy(core::PolicyKind::EBuff);
  EXPECT_EQ(c.policy().kind(), core::PolicyKind::EBuff);
  const DayResult r = c.run_day(solar::DayType::Cloudy);
  EXPECT_EQ(r.migrations, 0);
}

TEST(Cluster, BaatActsOnStressedDays) {
  ScenarioConfig cfg = quick_config(core::PolicyKind::Baat);
  Cluster c{cfg};
  seed_aged_fleet(c, six_month_aged_state());
  const DayResult r = c.run_day(solar::DayType::Rainy);
  EXPECT_GT(r.migrations + r.dvfs_transitions, 0);
}

TEST(Cluster, TickObserverSeesEveryTick) {
  Cluster c{quick_config()};
  long ticks = 0;
  double max_solar = 0.0;
  c.set_tick_observer([&](const TickObservation& obs) {
    ++ticks;
    max_solar = std::max(max_solar, obs.solar.value());
    ASSERT_NE(obs.route, nullptr);
    ASSERT_EQ(obs.route->nodes.size(), 6u);
  });
  c.run_day(solar::DayType::Sunny);
  EXPECT_EQ(ticks, 1440);
  EXPECT_GT(max_solar, 500.0);
}

TEST(Cluster, WorstNodeSelection) {
  DayResult r;
  r.nodes.resize(3);
  r.nodes[0].ah_discharged = util::ampere_hours(5.0);
  r.nodes[1].ah_discharged = util::ampere_hours(9.0);
  r.nodes[2].ah_discharged = util::ampere_hours(7.0);
  EXPECT_EQ(r.worst_node(), 1u);
}

TEST(Cluster, RejectsBadConfig) {
  ScenarioConfig cfg = quick_config();
  cfg.nodes = 0;
  EXPECT_THROW(Cluster{cfg}, util::PreconditionError);
  cfg = quick_config();
  cfg.dt = util::seconds(0.0);
  EXPECT_THROW(Cluster{cfg}, util::PreconditionError);
  cfg = quick_config();
  cfg.day_start = util::hours(20.0);
  cfg.day_end = util::hours(8.0);
  EXPECT_THROW(Cluster{cfg}, util::PreconditionError);
}

TEST(Experiment, RatioRescalesBattery) {
  const ScenarioConfig cfg = with_server_battery_ratio(prototype_scenario(), 10.0);
  EXPECT_NEAR(cfg.bank.chemistry.capacity_c20.value(), 15.0, 1e-9);  // 150 W / 10
  EXPECT_THROW(with_server_battery_ratio(prototype_scenario(), 0.0),
               util::PreconditionError);
}

TEST(Experiment, SeedAgedFleetAges) {
  Cluster c{quick_config()};
  seed_aged_fleet(c, six_month_aged_state());
  for (const auto& b : c.batteries()) {
    EXPECT_LT(b.health(), 0.93);
    EXPECT_GT(b.health(), 0.80);
  }
}

}  // namespace
}  // namespace baat::sim
