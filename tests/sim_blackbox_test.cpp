// Crash flight-recorder tests (DESIGN.md §5g): a NaN-poisoned run must abort
// through the watchdog (exit 3) and leave a readable blackbox-<day>/ bundle;
// --no-blackbox keeps the abort but suppresses the bundle.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "sim/cli.hpp"
#include "util/sim_clock.hpp"

namespace baat::sim {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(fs::temp_directory_path() / ("baat_blackbox_" + name)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

void reset_globals() {
  obs::set_profiling_enabled(false);
  obs::set_trace_enabled(false);
  obs::global_registry().reset();
  obs::global_trace().clear();
  util::set_sim_time(-1.0);
}

CliOptions poisoned_run(const ScratchDir& dir) {
  CliOptions o;
  o.days = 3;
  o.nodes = 2;
  o.seed = 7;
  o.faults = fault::parse_fault_plan("nan_poison:bank=1");
  o.blackbox_dir = dir.path().string();
  return o;
}

TEST(Blackbox, NanPoisonedRunAbortsWithExitThreeAndShipsABundle) {
  ScratchDir dir{"poisoned"};
  reset_globals();
  EXPECT_EQ(run_cli(poisoned_run(dir)), 3);

  // The poison fires at day 0's start, so the bundle names day 0.
  const fs::path bundle = dir.path() / "blackbox-0";
  ASSERT_TRUE(fs::is_directory(bundle)) << bundle;
  for (const char* name :
       {"MANIFEST.json", "health.txt", "trace.jsonl", "metrics.json", "ledger.csv"}) {
    EXPECT_TRUE(fs::exists(bundle / name)) << name;
  }
  // No cluster.snap presence assertion: the run dies mid-day, where a
  // snapshot is not well-defined and dump_blackbox skips it by design.

  const std::string manifest = slurp(bundle / "MANIFEST.json");
  EXPECT_NE(manifest.find("\"day\": 0"), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("finite_state"), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("\"health_score\": "), std::string::npos) << manifest;

  const std::string health = slurp(bundle / "health.txt");
  EXPECT_NE(health.find("finite_state"), std::string::npos) << health;
  EXPECT_NE(health.find("value=nan"), std::string::npos) << health;
  EXPECT_NE(health.find("node 1"), std::string::npos) << health;

  // The attribution ledger survives to the bundle with its full header.
  const std::string ledger = slurp(bundle / "ledger.csv");
  EXPECT_EQ(ledger.substr(0, ledger.find(',')), "scope");
  EXPECT_NE(ledger.find("fade_corrosion"), std::string::npos);
  EXPECT_NE(ledger.find("\ntotal,cluster,"), std::string::npos);
  reset_globals();
}

TEST(Blackbox, NoBlackboxStillAbortsButWritesNoBundle) {
  ScratchDir dir{"suppressed"};
  reset_globals();
  CliOptions o = poisoned_run(dir);
  o.blackbox = false;
  EXPECT_EQ(run_cli(o), 3);
  EXPECT_FALSE(fs::exists(dir.path() / "blackbox-0"));
  reset_globals();
}

TEST(Blackbox, CleanRunNeverWritesABundle) {
  ScratchDir dir{"clean"};
  reset_globals();
  CliOptions o;
  o.days = 2;
  o.nodes = 2;
  o.blackbox_dir = dir.path().string();
  EXPECT_EQ(run_cli(o), 0);
  EXPECT_TRUE(fs::is_empty(dir.path()));
  reset_globals();
}

}  // namespace
}  // namespace baat::sim
