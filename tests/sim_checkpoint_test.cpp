// The checkpoint/restore invariant (DESIGN.md §5f): a run checkpointed at
// day N and resumed reproduces the uninterrupted run *bit-identically* —
// result accumulators, cluster state, metric exports and traces — clean or
// faulted, exact or fast math, at any sweep worker count. These tests pin
// that contract at the library level; the CLI-level equivalent (stdout/CSV/
// report byte-compares) rides in CI's snapshot shard.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "obs/obs.hpp"
#include "sim/experiment.hpp"
#include "sim/multiday.hpp"
#include "sim/sweep.hpp"
#include "snapshot/snapshot.hpp"
#include "util/require.hpp"
#include "util/sim_clock.hpp"

namespace baat::sim {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test checkpoint directory under the system temp root.
class CheckpointDir {
 public:
  explicit CheckpointDir(const std::string& name)
      : path_((fs::temp_directory_path() / ("baat_ckpt_" + name)).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~CheckpointDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string snap(std::size_t day) const {
    return path_ + "/checkpoint-day-" + std::to_string(day) + ".snap";
  }

 private:
  std::string path_;
};

ScenarioConfig small_scenario(bool faulted = false,
                              battery::MathMode math = battery::MathMode::Exact) {
  ScenarioConfig cfg = prototype_scenario();
  cfg.nodes = 3;
  cfg.seed = 20260806;
  if (faulted) {
    cfg.faults = fault::parse_fault_plan(
        "sensor_noise:soc:0.03,pv_dropout:day=1:hours=3,cell_weak:bank=1:capacity=0.85");
    cfg.guard.enabled = true;
  }
  cfg.bank.math = math;
  return cfg;
}

MultiDayOptions day_options(std::size_t days) {
  MultiDayOptions opts;
  opts.days = days;
  opts.sunshine_fraction = 0.5;
  opts.probe_every_days = 3;  // exercise the SoH-probe state across the boundary
  return opts;
}

/// Everything the invariant promises byte-for-byte. Wall-clock profiling
/// histograms are the documented determinism exception, so profiling stays
/// off and the registry/trace comparison is exact.
struct RunSignature {
  std::vector<std::uint8_t> result_bytes;
  std::vector<std::uint8_t> cluster_bytes;
  std::string registry_json;
  std::string trace_jsonl;

  bool operator==(const RunSignature&) const = default;
};

RunSignature run_and_sign(const ScenarioConfig& cfg, const MultiDayOptions& opts) {
  obs::set_profiling_enabled(false);
  obs::set_trace_enabled(true);
  obs::global_registry().reset();
  obs::global_trace().clear();
  // Model the fresh process of a real resume: construction-time trace events
  // (static fault injection) stamp from the sim clock, which would otherwise
  // leak the previous run's end time within this test binary.
  util::set_sim_time(-1.0);

  Cluster cluster{cfg};
  const MultiDayResult result = run_multi_day(cluster, opts);

  RunSignature sig;
  snapshot::SnapshotWriter rw;
  save_state(rw, result);
  sig.result_bytes = rw.bytes();
  snapshot::SnapshotWriter cw;
  cluster.save_state(cw);
  sig.cluster_bytes = cw.bytes();
  sig.registry_json = obs::global_registry().json();
  std::ostringstream trace;
  obs::global_trace().write_jsonl(trace);
  sig.trace_jsonl = trace.str();

  obs::set_trace_enabled(false);
  return sig;
}

void expect_identical(const RunSignature& a, const RunSignature& b) {
  EXPECT_EQ(a.result_bytes, b.result_bytes);
  EXPECT_EQ(a.cluster_bytes, b.cluster_bytes);
  EXPECT_EQ(a.registry_json, b.registry_json);
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
}

/// One uninterrupted run vs. checkpoint-at-`every`-days + resume-from-`at`.
void check_resume_identity(const ScenarioConfig& cfg, std::size_t days,
                           std::size_t every, std::size_t at,
                           const std::string& dir_name) {
  CheckpointDir dir{dir_name};
  MultiDayOptions opts = day_options(days);
  const std::uint64_t hash = scenario_fingerprint(cfg, opts);

  const RunSignature uninterrupted = run_and_sign(cfg, opts);

  opts.checkpoint.every_days = every;
  opts.checkpoint.dir = dir.path();
  opts.checkpoint.config_hash = hash;
  run_and_sign(cfg, opts);
  ASSERT_TRUE(fs::exists(dir.snap(at))) << dir.snap(at);

  MultiDayOptions resume_opts = day_options(days);
  resume_opts.checkpoint.resume_path = dir.snap(at);
  resume_opts.checkpoint.config_hash = hash;
  const RunSignature resumed = run_and_sign(cfg, resume_opts);

  expect_identical(uninterrupted, resumed);
}

TEST(CheckpointResume, CleanRunBitIdentical) {
  check_resume_identity(small_scenario(), 8, 3, 6, "clean");
}

TEST(CheckpointResume, FaultedRunBitIdentical) {
  // The fault injector's forked per-node RNG streams and the guard's
  // degraded-mode state all cross the snapshot boundary.
  check_resume_identity(small_scenario(/*faulted=*/true), 8, 4, 4, "faulted");
}

TEST(CheckpointResume, FastMathRunBitIdentical) {
  check_resume_identity(small_scenario(false, battery::MathMode::Fast), 6, 2, 4, "fast");
}

TEST(CheckpointResume, SimdMathRunBitIdentical) {
  // The lane-batched tier shares the fast tier's snapshot story: the math
  // byte round-trips and the block kernel is deterministic, so a resumed
  // run must be bit-identical to the uninterrupted one.
  check_resume_identity(small_scenario(false, battery::MathMode::Simd), 6, 2, 4, "simd");
}

TEST(CheckpointResume, EveryDayBoundaryResumesIdentically) {
  const ScenarioConfig cfg = small_scenario();
  CheckpointDir dir{"every_day"};
  MultiDayOptions opts = day_options(5);
  const RunSignature uninterrupted = run_and_sign(cfg, opts);

  opts.checkpoint.every_days = 1;
  opts.checkpoint.dir = dir.path();
  run_and_sign(cfg, opts);

  for (std::size_t day = 1; day < 5; ++day) {
    ASSERT_TRUE(fs::exists(dir.snap(day)));
    MultiDayOptions resume_opts = day_options(5);
    resume_opts.checkpoint.resume_path = dir.snap(day);
    const RunSignature resumed = run_and_sign(cfg, resume_opts);
    SCOPED_TRACE("resumed from day " + std::to_string(day));
    expect_identical(uninterrupted, resumed);
  }
}

TEST(CheckpointResume, FinalDayWritesNoPointlessSnapshot) {
  // A checkpoint after the last day would never be resumed; the loop skips it.
  const ScenarioConfig cfg = small_scenario();
  CheckpointDir dir{"final_day"};
  MultiDayOptions opts = day_options(4);
  opts.checkpoint.every_days = 2;
  opts.checkpoint.dir = dir.path();
  run_and_sign(cfg, opts);
  EXPECT_TRUE(fs::exists(dir.snap(2)));
  EXPECT_FALSE(fs::exists(dir.snap(4)));
}

TEST(ScenarioFingerprint, SensitiveToEveryTrajectoryKnob) {
  const ScenarioConfig cfg = small_scenario();
  const MultiDayOptions opts = day_options(6);
  const std::uint64_t base = scenario_fingerprint(cfg, opts);
  EXPECT_EQ(base, scenario_fingerprint(small_scenario(), day_options(6)));
  EXPECT_NE(base, 0u);  // 0 means "unchecked" and must never be produced

  ScenarioConfig seed = cfg;
  seed.seed = cfg.seed + 1;
  EXPECT_NE(base, scenario_fingerprint(seed, opts));

  ScenarioConfig nodes = cfg;
  nodes.nodes = cfg.nodes + 1;
  EXPECT_NE(base, scenario_fingerprint(nodes, opts));

  EXPECT_NE(base, scenario_fingerprint(small_scenario(true), opts));
  EXPECT_NE(base,
            scenario_fingerprint(small_scenario(false, battery::MathMode::Fast), opts));
  EXPECT_NE(base,
            scenario_fingerprint(small_scenario(false, battery::MathMode::Simd), opts));
  EXPECT_NE(base, scenario_fingerprint(cfg, day_options(7)));

  MultiDayOptions sunshine = day_options(6);
  sunshine.sunshine_fraction = 0.75;
  EXPECT_NE(base, scenario_fingerprint(cfg, sunshine));
}

TEST(CheckpointResume, MismatchedConfigHashRefused) {
  const ScenarioConfig cfg = small_scenario();
  CheckpointDir dir{"hash_mismatch"};
  MultiDayOptions opts = day_options(4);
  opts.checkpoint.every_days = 2;
  opts.checkpoint.dir = dir.path();
  opts.checkpoint.config_hash = scenario_fingerprint(cfg, opts);
  run_and_sign(cfg, opts);

  MultiDayOptions resume_opts = day_options(4);
  resume_opts.checkpoint.resume_path = dir.snap(2);
  resume_opts.checkpoint.config_hash = opts.checkpoint.config_hash ^ 0x1;
  Cluster cluster{cfg};
  EXPECT_THROW(run_multi_day(cluster, resume_opts), snapshot::SnapshotError);
}

TEST(CheckpointResume, SnapshotPastTheRunEndRefused) {
  const ScenarioConfig cfg = small_scenario();
  CheckpointDir dir{"past_end"};
  MultiDayOptions opts = day_options(6);
  opts.checkpoint.every_days = 4;
  opts.checkpoint.dir = dir.path();
  run_and_sign(cfg, opts);

  MultiDayOptions resume_opts = day_options(3);  // shorter than the saved day 4
  resume_opts.checkpoint.resume_path = dir.snap(4);
  Cluster cluster{cfg};
  try {
    run_multi_day(cluster, resume_opts);
    FAIL() << "resuming past the end of the run must be refused";
  } catch (const snapshot::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("nothing left to resume"), std::string::npos);
  }
}

TEST(CheckpointResume, DifferentWeatherSequenceRefused) {
  // With config_hash checking disabled (0), the weather cross-check is the
  // backstop against resuming into a divergent trajectory.
  const ScenarioConfig cfg = small_scenario();
  CheckpointDir dir{"weather"};
  MultiDayOptions opts = day_options(6);
  opts.weather = mixed_weather(6, 2, 1, 1);
  opts.checkpoint.every_days = 3;
  opts.checkpoint.dir = dir.path();
  run_and_sign(cfg, opts);

  MultiDayOptions resume_opts = day_options(6);
  resume_opts.weather = mixed_weather(6, 1, 1, 2);
  resume_opts.checkpoint.resume_path = dir.snap(3);
  Cluster cluster{cfg};
  try {
    run_multi_day(cluster, resume_opts);
    FAIL() << "a different weather sequence must be refused";
  } catch (const snapshot::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("weather"), std::string::npos);
  }
}

TEST(CheckpointResume, TrailingBytesInPayloadRefused) {
  const ScenarioConfig cfg = small_scenario();
  CheckpointDir dir{"trailing"};
  MultiDayOptions opts = day_options(4);
  opts.checkpoint.every_days = 2;
  opts.checkpoint.dir = dir.path();
  run_and_sign(cfg, opts);

  // Re-commit the snapshot with one garbage byte appended. The container
  // (size + CRC) is self-consistent, so only the state loader's exhaustion
  // check can catch it.
  std::vector<std::uint8_t> payload = snapshot::read_snapshot_file(dir.snap(2), 0);
  payload.push_back(0xEE);
  snapshot::write_snapshot_file(dir.snap(2), 0, payload);

  MultiDayOptions resume_opts = day_options(4);
  resume_opts.checkpoint.resume_path = dir.snap(2);
  Cluster cluster{cfg};
  try {
    run_multi_day(cluster, resume_opts);
    FAIL() << "trailing payload bytes must be refused";
  } catch (const snapshot::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos);
  }
}

TEST(CheckpointResume, TruncatedSnapshotRefusedThroughTheRunPath) {
  const ScenarioConfig cfg = small_scenario();
  CheckpointDir dir{"truncated"};
  MultiDayOptions opts = day_options(4);
  opts.checkpoint.every_days = 2;
  opts.checkpoint.dir = dir.path();
  run_and_sign(cfg, opts);

  const auto full_size = fs::file_size(dir.snap(2));
  fs::resize_file(dir.snap(2), full_size / 2);

  MultiDayOptions resume_opts = day_options(4);
  resume_opts.checkpoint.resume_path = dir.snap(2);
  Cluster cluster{cfg};
  EXPECT_THROW(run_multi_day(cluster, resume_opts), snapshot::SnapshotError);
}

// ---------------------------------------------------------------------------
// Sweep-level checkpointing: an interrupted sweep resumes only its
// unfinished jobs.

/// A sweep job computing a deterministic value, with save/restore wired and
/// an execution counter so tests can prove work() did or did not run.
SweepJob value_job(const std::string& name, double input, double* out,
                   std::atomic<int>* runs) {
  SweepJob job;
  job.name = name;
  job.work = [input, out, runs] {
    runs->fetch_add(1);
    *out = input * input + 1.0;
  };
  job.save_result = [out](snapshot::SnapshotWriter& w) { w.write_f64(*out); };
  job.restore_result = [out](snapshot::SnapshotReader& r) { *out = r.read_f64(); };
  return job;
}

TEST(SweepCheckpoint, FinishedJobsAreSkippedOnRerun) {
  CheckpointDir dir{"sweep_skip"};
  SweepOptions opts;
  opts.jobs = 2;
  opts.checkpoint_dir = dir.path();
  opts.config_hash = 0xFEED;

  std::vector<double> values(3, 0.0);
  std::atomic<int> runs{0};
  std::vector<SweepJob> jobs;
  for (std::size_t i = 0; i < 3; ++i) {
    jobs.push_back(value_job("point-" + std::to_string(i),
                             static_cast<double>(i + 1), &values[i], &runs));
  }
  const auto first = run_sweep(std::move(jobs), opts);
  EXPECT_EQ(runs.load(), 3);
  const std::vector<double> first_values = values;
  for (const auto& r : first) {
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.resumed);
    EXPECT_TRUE(fs::exists(dir.path() + "/" + r.name + ".ckpt"));
  }

  // Second pass: every point restores, no work() runs, values identical.
  std::fill(values.begin(), values.end(), 0.0);
  std::vector<SweepJob> again;
  for (std::size_t i = 0; i < 3; ++i) {
    again.push_back(value_job("point-" + std::to_string(i),
                              static_cast<double>(i + 1), &values[i], &runs));
  }
  const auto second = run_sweep(std::move(again), opts);
  EXPECT_EQ(runs.load(), 3);
  EXPECT_EQ(values, first_values);
  for (const auto& r : second) {
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.resumed);
  }
}

TEST(SweepCheckpoint, InterruptedSweepResumesOnlyUnfinishedJobs) {
  CheckpointDir dir{"sweep_partial"};
  SweepOptions opts;
  opts.jobs = 1;
  opts.checkpoint_dir = dir.path();

  // "Interruption": only the first two of four points completed.
  std::vector<double> values(4, 0.0);
  std::atomic<int> runs{0};
  std::vector<SweepJob> partial;
  for (std::size_t i = 0; i < 2; ++i) {
    partial.push_back(value_job("point-" + std::to_string(i),
                                static_cast<double>(i + 1), &values[i], &runs));
  }
  run_sweep(std::move(partial), opts);
  EXPECT_EQ(runs.load(), 2);

  // The re-run of the full sweep recomputes exactly the missing half.
  opts.jobs = 4;
  std::vector<SweepJob> full;
  for (std::size_t i = 0; i < 4; ++i) {
    full.push_back(value_job("point-" + std::to_string(i),
                             static_cast<double>(i + 1), &values[i], &runs));
  }
  const auto results = run_sweep(std::move(full), opts);
  EXPECT_EQ(runs.load(), 4);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].resumed);
  EXPECT_TRUE(results[1].resumed);
  EXPECT_FALSE(results[2].resumed);
  EXPECT_FALSE(results[3].resumed);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(values[i], static_cast<double>((i + 1) * (i + 1)) + 1.0);
  }
}

TEST(SweepCheckpoint, CorruptCheckpointDowngradesToRerun) {
  CheckpointDir dir{"sweep_corrupt"};
  SweepOptions opts;
  opts.jobs = 1;
  opts.checkpoint_dir = dir.path();

  double value = 0.0;
  std::atomic<int> runs{0};
  run_sweep({value_job("point-0", 3.0, &value, &runs)}, opts);
  EXPECT_EQ(runs.load(), 1);

  // Truncate the committed checkpoint; the resume attempt must warn, re-run
  // the job, and leave a *valid* file behind.
  const std::string ckpt = dir.path() + "/point-0.ckpt";
  fs::resize_file(ckpt, fs::file_size(ckpt) - 3);
  value = 0.0;
  const auto rerun = run_sweep({value_job("point-0", 3.0, &value, &runs)}, opts);
  EXPECT_EQ(runs.load(), 2);
  EXPECT_TRUE(rerun[0].ok);
  EXPECT_FALSE(rerun[0].resumed);
  EXPECT_DOUBLE_EQ(value, 10.0);

  const auto third = run_sweep({value_job("point-0", 3.0, &value, &runs)}, opts);
  EXPECT_EQ(runs.load(), 2);  // healed: restores again
  EXPECT_TRUE(third[0].resumed);
}

TEST(SweepCheckpoint, HashMismatchedCheckpointReruns) {
  CheckpointDir dir{"sweep_hash"};
  SweepOptions opts;
  opts.jobs = 1;
  opts.checkpoint_dir = dir.path();
  opts.config_hash = 1;

  double value = 0.0;
  std::atomic<int> runs{0};
  run_sweep({value_job("point-0", 2.0, &value, &runs)}, opts);

  opts.config_hash = 2;  // "different sweep" — stale files must not leak in
  const auto rerun = run_sweep({value_job("point-0", 2.0, &value, &runs)}, opts);
  EXPECT_EQ(runs.load(), 2);
  EXPECT_FALSE(rerun[0].resumed);
}

TEST(SweepCheckpoint, MultiDayPointsResumeIdenticallyAtAnyWorkerCount) {
  // End-to-end: real multi-day points, checkpointed under --jobs 1, resumed
  // under --jobs 4, byte-compared against an uncheckpointed sweep.
  const ScenarioConfig cfg = small_scenario();
  const auto run_point = [&cfg](double sunshine) {
    Cluster cluster{cfg};
    MultiDayOptions opts;
    opts.days = 3;
    opts.sunshine_fraction = sunshine;
    opts.probe_every_days = 0;
    opts.keep_days = false;
    const MultiDayResult r = run_multi_day(cluster, opts);
    snapshot::SnapshotWriter w;
    save_state(w, r);
    return w.bytes();
  };
  const std::vector<double> fractions = {0.3, 0.6, 0.9};

  const auto sweep_bytes = [&](SweepOptions opts,
                               std::vector<bool>* resumed_out) {
    std::vector<std::vector<std::uint8_t>> bytes(fractions.size());
    std::vector<SweepJob> jobs;
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      SweepJob job;
      job.name = "point-" + std::to_string(i);
      job.work = [&, i] { bytes[i] = run_point(fractions[i]); };
      job.save_result = [&bytes, i](snapshot::SnapshotWriter& w) {
        w.write_u8_vec(bytes[i]);
      };
      job.restore_result = [&bytes, i](snapshot::SnapshotReader& r) {
        bytes[i] = r.read_u8_vec();
      };
      jobs.push_back(std::move(job));
    }
    const auto results = run_sweep(std::move(jobs), opts);
    if (resumed_out != nullptr) {
      resumed_out->clear();
      for (const auto& r : results) resumed_out->push_back(r.resumed);
    }
    return bytes;
  };

  SweepOptions plain;
  plain.jobs = 2;
  const auto reference = sweep_bytes(plain, nullptr);

  CheckpointDir dir{"sweep_multiday"};
  SweepOptions writer;
  writer.jobs = 1;
  writer.checkpoint_dir = dir.path();
  EXPECT_EQ(sweep_bytes(writer, nullptr), reference);

  SweepOptions reader;
  reader.jobs = 4;
  reader.checkpoint_dir = dir.path();
  std::vector<bool> resumed;
  EXPECT_EQ(sweep_bytes(reader, &resumed), reference);
  EXPECT_EQ(resumed, std::vector<bool>(fractions.size(), true));
}

}  // namespace
}  // namespace baat::sim
