#include <gtest/gtest.h>

#include "battery/rainflow.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace baat::battery {
namespace {

double total_count(const std::vector<RainflowCycle>& s) {
  double t = 0.0;
  for (const auto& c : s) t += c.count;
  return t;
}

TEST(Rainflow, EmptyAndConstantSeries) {
  EXPECT_TRUE(rainflow_count({}).empty());
  EXPECT_TRUE(rainflow_count({0.5}).empty());
  EXPECT_TRUE(rainflow_count({0.5, 0.5, 0.5}).empty());
}

TEST(Rainflow, SingleSwingIsHalfCycle) {
  const auto s = rainflow_count({1.0, 0.4});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_NEAR(s[0].depth, 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(s[0].count, 0.5);
  EXPECT_NEAR(s[0].mean, 0.7, 1e-12);
}

TEST(Rainflow, RepeatedFullCyclesCounted) {
  // 10 identical 60% swings → ~10 equivalent cycles (mix of full + residue
  // halves), total depth-weighted count ≈ 10 · 0.6.
  std::vector<double> soc;
  for (int i = 0; i < 10; ++i) {
    soc.push_back(1.0);
    soc.push_back(0.4);
  }
  soc.push_back(1.0);
  const auto s = rainflow_count(soc);
  EXPECT_NEAR(equivalent_full_cycles(s), 10.0 * 0.6, 0.31);
  for (const auto& c : s) EXPECT_NEAR(c.depth, 0.6, 1e-12);
}

TEST(Rainflow, SmallRippleInsideBigSwing) {
  // Classic rainflow case: a small dip nested in a large excursion counts
  // as one small full cycle plus the large half cycles.
  const auto s = rainflow_count({1.0, 0.3, 0.5, 0.35, 0.9});
  double small_full = 0.0;
  double big = 0.0;
  for (const auto& c : s) {
    if (c.depth < 0.2) {
      small_full += c.count;
    } else {
      big += c.count;
    }
  }
  EXPECT_DOUBLE_EQ(small_full, 1.0);  // the 0.5→0.35 ripple
  EXPECT_GE(big, 1.0);                // the residual large swings
}

TEST(Rainflow, MonotoneRampIsOneHalfCycle) {
  const auto s = rainflow_count({0.2, 0.3, 0.4, 0.7, 0.9});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_NEAR(s[0].depth, 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(s[0].count, 0.5);
}

TEST(Rainflow, EquivalentFullCyclesMatchesAmpHourIntuition) {
  // EFC from rainflow must equal total |ΔSoC| / 2 for any closed series.
  std::vector<double> soc{1.0, 0.5, 0.8, 0.2, 0.6, 0.1, 1.0};
  double travel = 0.0;
  for (std::size_t i = 1; i < soc.size(); ++i) travel += std::fabs(soc[i] - soc[i - 1]);
  const auto s = rainflow_count(soc);
  EXPECT_NEAR(equivalent_full_cycles(s), travel / 2.0, 1e-9);
}

TEST(Rainflow, DamageMatchesCurveForUniformCycling) {
  const CycleLifeCurve curve = curve_for(Manufacturer::Trojan);
  std::vector<double> soc;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    soc.push_back(1.0);
    soc.push_back(0.5);  // 50% DoD cycling
  }
  soc.push_back(1.0);
  const double damage = rainflow_damage(rainflow_count(soc), curve);
  EXPECT_NEAR(damage, n / curve.cycles(0.5), 0.02);
}

TEST(Rainflow, DeeperCyclingDamagesMore) {
  const CycleLifeCurve curve = curve_for(Manufacturer::Trojan);
  auto cycling = [](double low) {
    std::vector<double> soc;
    for (int i = 0; i < 20; ++i) {
      soc.push_back(1.0);
      soc.push_back(low);
    }
    soc.push_back(1.0);
    return soc;
  };
  const double shallow = rainflow_damage(rainflow_count(cycling(0.8)), curve);
  const double deep = rainflow_damage(rainflow_count(cycling(0.2)), curve);
  EXPECT_GT(deep, 2.0 * shallow);
}

TEST(Rainflow, RandomWalkInvariants) {
  // Property sweep: for random SoC walks, EFC == travel/2 and damage >= 0.
  const CycleLifeCurve curve = curve_for(Manufacturer::UPG);
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    util::Rng rng{seed};
    std::vector<double> soc{0.5};
    for (int i = 0; i < 500; ++i) {
      soc.push_back(util::clamp01(soc.back() + rng.uniform(-0.1, 0.1)));
    }
    double travel = 0.0;
    for (std::size_t i = 1; i < soc.size(); ++i) {
      travel += std::fabs(soc[i] - soc[i - 1]);
    }
    const auto s = rainflow_count(soc);
    EXPECT_NEAR(equivalent_full_cycles(s), travel / 2.0, 1e-9) << "seed " << seed;
    EXPECT_GE(rainflow_damage(s, curve), 0.0);
  }
}

TEST(Rainflow, RejectsOutOfRangeSoc) {
  EXPECT_THROW(rainflow_count({0.5, 1.4}), util::PreconditionError);
  EXPECT_THROW(rainflow_count({-0.1}), util::PreconditionError);
}

// Regression for the faulted-telemetry abort: coulomb-counting drift under
// injected sensor noise legitimately leaves SoC estimates a few ULP outside
// [0, 1], and rainflow_count used to BAAT_REQUIRE the whole series away.
// Epsilon excursions are clamped; genuinely out-of-range values still throw.
TEST(Rainflow, ClampsEpsilonExcursionsFromDegradedTelemetry) {
  // Reproduce the drift the way a coulomb counter does: accumulate charge
  // fractions whose exact sum is 1 but whose float sum overshoots by 1 ULP.
  double soc = 0.0;
  for (double charge : {0.2, 0.4, 0.3, 0.1}) soc += charge;
  ASSERT_GT(soc, 1.0);  // 1.0000000000000002
  ASSERT_LE(soc, 1.0 + 1e-9);

  const std::vector<double> drifted = {0.2, soc, 0.2, soc, 0.2};
  const std::vector<double> clamped = {0.2, 1.0, 0.2, 1.0, 0.2};
  const auto from_drifted = rainflow_count(drifted);
  const auto from_clamped = rainflow_count(clamped);
  ASSERT_EQ(from_drifted.size(), from_clamped.size());
  for (std::size_t i = 0; i < from_drifted.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_drifted[i].depth, from_clamped[i].depth);
    EXPECT_DOUBLE_EQ(from_drifted[i].count, from_clamped[i].count);
    EXPECT_DOUBLE_EQ(from_drifted[i].mean, from_clamped[i].mean);
  }

  // Same at the bottom rail, and for a bare epsilon series.
  EXPECT_NO_THROW(rainflow_count({0.8, -1e-12, 0.8}));
  EXPECT_NO_THROW(rainflow_count({1.0 + 1e-10, 0.5, -1e-10}));

  // Just past the tolerance is an estimator bug, not drift: still refused.
  EXPECT_THROW(rainflow_count({0.5, 1.0 + 1e-8}), util::PreconditionError);
  EXPECT_THROW(rainflow_count({-1e-8, 0.5}), util::PreconditionError);
}

}  // namespace
}  // namespace baat::battery
