#include <gtest/gtest.h>

#include "battery/bank.hpp"
#include "util/require.hpp"

namespace baat::battery {
namespace {

TEST(Bank, ProducesRequestedUnitCount) {
  BankSpec spec;
  spec.units = 12;  // the prototype's array
  util::Rng rng{1};
  const auto bank = make_bank(spec, rng);
  EXPECT_EQ(bank.size(), 12u);
}

TEST(Bank, DeterministicForSameSeed) {
  BankSpec spec;
  util::Rng r1{9};
  util::Rng r2{9};
  const auto a = make_bank(spec, r1);
  const auto b = make_bank(spec, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].nameplate().value(), b[i].nameplate().value());
    EXPECT_DOUBLE_EQ(a[i].internal_resistance_ohms(), b[i].internal_resistance_ohms());
  }
}

TEST(Bank, UnitsVaryButStayNearNominal) {
  BankSpec spec;
  spec.units = 64;
  util::Rng rng{7};
  const auto bank = make_bank(spec, rng);
  double lo = 1e9;
  double hi = 0.0;
  for (const Battery& b : bank) {
    lo = std::min(lo, b.nameplate().value());
    hi = std::max(hi, b.nameplate().value());
    // ±3σ clamp at 2.5%: [0.925, 1.075] × 35.
    EXPECT_GE(b.nameplate().value(), 35.0 * (1.0 - 3.0 * spec.capacity_sigma) - 1e-9);
    EXPECT_LE(b.nameplate().value(), 35.0 * (1.0 + 3.0 * spec.capacity_sigma) + 1e-9);
  }
  EXPECT_GT(hi - lo, 0.1);  // with 64 draws some spread must exist
}

TEST(Bank, ZeroSigmaGivesIdenticalUnits) {
  BankSpec spec;
  spec.capacity_sigma = 0.0;
  spec.resistance_sigma = 0.0;
  util::Rng rng{5};
  const auto bank = make_bank(spec, rng);
  for (const Battery& b : bank) {
    EXPECT_DOUBLE_EQ(b.nameplate().value(), 35.0);
    EXPECT_DOUBLE_EQ(b.internal_resistance_ohms(), LeadAcidParams{}.r_internal_ohms);
  }
}

TEST(Bank, InitialSocApplied) {
  BankSpec spec;
  spec.initial_soc = 0.5;
  util::Rng rng{3};
  const auto bank = make_bank(spec, rng);
  for (const Battery& b : bank) EXPECT_DOUBLE_EQ(b.soc(), 0.5);
}

TEST(Bank, RejectsBadSpec) {
  util::Rng rng{1};
  BankSpec none;
  none.units = 0;
  EXPECT_THROW(make_bank(none, rng), util::PreconditionError);
  BankSpec wild;
  wild.capacity_sigma = 0.5;
  EXPECT_THROW(make_bank(wild, rng), util::PreconditionError);
}

}  // namespace
}  // namespace baat::battery
