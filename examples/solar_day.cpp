// solar_day: the prototype cluster running one cloudy day under each of the
// four Table 4 policies against the *same* solar trace, printing the
// aging/performance trade-off the paper's §VI-B/§VI-F discusses.

#include <cstdio>

#include "sim/experiment.hpp"

int main() {
  using namespace baat;

  const sim::ScenarioConfig cfg = sim::prototype_scenario();
  const solar::SolarDay day{cfg.plant, solar::DayType::Cloudy,
                            util::Rng::stream(cfg.seed, "example-day")};

  std::printf("Cloudy day, %.1f kWh solar, 6 nodes, six-workload mix x%d\n\n",
              day.daily_energy().value() / 1000.0, cfg.replicas);
  std::printf("%-8s %10s %10s %10s %10s %8s %6s\n", "policy", "work(Mcs)", "worstAh",
              "lowSoC(h)", "downtime", "migr", "dvfs");

  for (core::PolicyKind policy :
       {core::PolicyKind::EBuff, core::PolicyKind::BaatS, core::PolicyKind::BaatH,
        core::PolicyKind::Baat}) {
    const sim::DayResult r = sim::run_matched_day(cfg, policy, day);
    const std::size_t w = r.worst_node();
    std::printf("%-8s %10.2f %10.2f %10.2f %10.2f %8d %6d\n",
                std::string(core::policy_kind_name(policy)).c_str(),
                r.throughput_work / 1e6, r.nodes[w].ah_discharged.value(),
                r.worst_low_soc_time().value() / 3600.0,
                r.total_downtime().value() / 3600.0, r.migrations, r.dvfs_transitions);
  }
  return 0;
}
