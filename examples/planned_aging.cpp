// planned_aging: Eq 7 in action. Given a datacenter end-of-life, BAAT
// computes the DoD that spends the battery's remaining Ah budget exactly
// over the remaining planned cycles, then runs a day with the retargeted
// slowdown knee and reports the performance gained over conservative BAAT.

#include <cstdio>

#include "core/planned.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace baat;

  sim::ScenarioConfig cfg = sim::prototype_scenario();
  const util::AmpereHours c_total = cfg.metrics.lifetime_throughput;

  std::printf("Eq 7 planning table (C_total = %.0f Ah, 35 Ah per cycle):\n",
              c_total.value());
  std::printf("%12s %12s %10s %12s\n", "C_used(Ah)", "cycles_plan", "DoD_goal",
              "SoC trigger");
  for (double used_frac : {0.0, 0.25, 0.50}) {
    for (double cycles : {500.0, 1000.0, 2000.0}) {
      const core::DodGoal g = core::planned_dod(
          c_total, util::AmpereHours{c_total.value() * used_frac}, cycles,
          cfg.bank.chemistry.capacity_c20);
      std::printf("%12.0f %12.0f %9.0f%% %12.2f\n", c_total.value() * used_frac, cycles,
                  g.dod * 100.0, g.soc_trigger);
    }
  }

  // One cloudy day: conservative BAAT vs planned BAAT with an aggressive plan.
  const solar::SolarDay day{cfg.plant, solar::DayType::Cloudy,
                            util::Rng::stream(cfg.seed, "planned-day")};
  const sim::DayResult base = sim::run_matched_day(cfg, core::PolicyKind::Baat, day);

  cfg.policy_params.planned.cycles_plan = 400.0;  // few cycles left before DC EoL
  const sim::DayResult planned =
      sim::run_matched_day(cfg, core::PolicyKind::BaatPlanned, day);

  std::printf("\nCloudy-day throughput: BAAT %.2f Mcs, BAAT-planned %.2f Mcs (%+.1f%%)\n",
              base.throughput_work / 1e6, planned.throughput_work / 1e6,
              (planned.throughput_work / base.throughput_work - 1.0) * 100.0);
  return 0;
}
