// fleet_aging: three simulated months of mixed weather under e-Buff vs BAAT,
// with monthly battery probes (the Fig 3–5 instrumentation) and a lifetime
// forecast for each policy.

#include <cstdio>

#include "sim/experiment.hpp"

int main() {
  using namespace baat;

  for (core::PolicyKind policy : {core::PolicyKind::EBuff, core::PolicyKind::Baat}) {
    sim::ScenarioConfig cfg = sim::prototype_scenario();
    cfg.policy = policy;
    sim::Cluster cluster{cfg};

    sim::MultiDayOptions opts;
    opts.days = 90;
    opts.weather = sim::mixed_weather(opts.days, 3, 2, 1);  // temperate mix
    opts.probe_every_days = 30;
    opts.keep_days = false;
    const sim::MultiDayResult run = sim::run_multi_day(cluster, opts);

    std::printf("%s — 90 days, weather mix 3 sunny : 2 cloudy : 1 rainy\n",
                std::string(core::policy_kind_name(policy)).c_str());
    for (const sim::MonthlyProbe& p : run.monthly) {
      std::printf("  month %d: Vfull %.2f V, capacity %5.1f %%, round-trip %5.1f %%\n",
                  p.month, p.full_voltage, p.capacity_fraction * 100.0,
                  p.round_trip_efficiency * 100.0);
    }
    const core::LifetimeEstimate life =
        core::extrapolate_lifetime(1.0, run.min_health_end, 90.0);
    std::printf("  fleet health: mean %.4f, min %.4f -> worst-node lifetime %.1f months\n\n",
                run.mean_health_end, run.min_health_end, life.days / 30.0);
  }
  return 0;
}
