// topology: distributed per-server batteries vs one centralized bank on the
// same duty — §II-A's architecture choice made tangible. Shows why the
// emerging designs the paper builds on (Google per-server, Facebook
// per-rack) decentralize: graceful degradation instead of fleet-wide SPOF.

#include <cstdio>
#include <numeric>
#include <vector>

#include "power/centralized.hpp"
#include "power/router.hpp"
#include "solar/solar_day.hpp"

int main() {
  using namespace baat;

  const solar::SolarDay day{solar::PlantSpec{}, solar::DayType::Rainy,
                            util::Rng{2026}};
  std::printf("One rainy day (%.1f kWh solar), six nodes at 70-130 W each:\n\n",
              day.daily_energy().value() / 1000.0);

  const double demand_w[6] = {70.0, 85.0, 95.0, 105.0, 115.0, 130.0};

  // Distributed: one 12 V / 35 Ah block per node.
  std::vector<battery::Battery> dist;
  for (int i = 0; i < 6; ++i) {
    dist.emplace_back(battery::LeadAcidParams{}, battery::AgingParams{},
                      battery::ThermalParams{});
  }
  std::vector<std::size_t> order(6);
  std::iota(order.begin(), order.end(), std::size_t{0});

  // Centralized: one shared bank with the same total capacity.
  battery::Battery bank{battery::LeadAcidParams{}, battery::AgingParams{},
                        battery::ThermalParams{}, 6.0, 1.0 / 6.0};

  long dist_partial = 0;
  long dist_spof = 0;
  long cent_spof = 0;
  for (int m = 0; m < 1440; ++m) {
    const util::Seconds tod{m * 60.0};
    const bool on = tod >= util::hours(8.5) && tod < util::hours(18.5);
    std::vector<util::Watts> demands(6);
    for (int i = 0; i < 6; ++i) demands[i] = util::watts(on ? demand_w[i] : 0.0);

    const auto rd = power::route_power(day.power(tod), demands, dist, order,
                                       power::RouterParams{}, util::minutes(1.0));
    int down = 0;
    for (const auto& n : rd.nodes) down += on && n.unmet.value() > 1.0 ? 1 : 0;
    if (down == 6) ++dist_spof;
    if (down > 0 && down < 6) ++dist_partial;

    const auto rc = power::route_power_centralized(
        day.power(tod), demands, bank, power::RouterParams{}, util::minutes(1.0));
    int cdown = 0;
    for (const auto& n : rc.nodes) cdown += on && n.unmet.value() > 1.0 ? 1 : 0;
    if (cdown == 6) ++cent_spof;
  }

  std::printf("distributed : %3ld min fleet-wide outage, %3ld min partial "
              "(some nodes ride through)\n",
              dist_spof, dist_partial);
  std::printf("centralized : %3ld min fleet-wide outage — every exhaustion is "
              "a single point of failure\n",
              cent_spof);
  std::printf("\nsurviving SoC, distributed nodes:");
  for (const auto& b : dist) std::printf(" %4.0f%%", b.soc() * 100.0);
  std::printf("\nshared bank SoC: %4.0f%%\n", bank.soc() * 100.0);
  return 0;
}
