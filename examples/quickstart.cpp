// Quickstart: one battery node, one simulated day, the five BAAT aging
// metrics. Shows the minimal public-API path: build a battery, drive it
// through a charge/discharge pattern, log it into a power table, and read
// the Eq 1–5 metrics the BAAT controller would act on.

#include <cstdio>

#include "battery/battery.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/power_table.hpp"
#include "telemetry/sensor.hpp"
#include "util/rng.hpp"

int main() {
  using namespace baat;

  // A 12 V 35 Ah VRLA block — the paper prototype's unit.
  battery::LeadAcidParams chem;
  battery::Battery bat{chem, battery::AgingParams{}, battery::ThermalParams{}};

  telemetry::PowerTableParams table_params;
  table_params.chemistry = chem;
  telemetry::PowerTable table{table_params};
  telemetry::BatterySensor sensor{telemetry::SensorNoise{}, util::Rng{7}};

  // A day of green-datacenter duty: morning discharge (cloudy, servers on
  // battery), midday solar recharge, evening discharge.
  const util::Seconds dt = util::minutes(1.0);
  auto drive = [&](double hours, double amps) {
    const long steps = static_cast<long>(hours * 60.0);
    for (long i = 0; i < steps; ++i) {
      const auto res = bat.step(util::amperes(amps), dt);
      const auto reading =
          sensor.read(bat, res.actual_current, util::Seconds{table.time_total().value()});
      table.record(reading, dt);
    }
  };

  drive(3.0, 5.0);    // morning: 3 h at 5 A discharge
  drive(5.0, -6.0);   // midday: 5 h solar charging at up to 6 A
  drive(2.5, 7.0);    // evening peak: 2.5 h at 7 A

  const telemetry::AgingMetrics m =
      telemetry::compute_metrics(table, telemetry::MetricParams{});

  std::printf("After one day of cyclic duty on a 12V/35Ah VRLA unit:\n");
  std::printf("  SoC (true)        : %5.1f %%\n", bat.soc() * 100.0);
  std::printf("  SoC (estimated)   : %5.1f %%\n", table.estimated_soc() * 100.0);
  std::printf("  health            : %6.4f\n", bat.health());
  std::printf("  NAT  (Eq 1)       : %8.6f\n", m.nat);
  std::printf("  CF   (Eq 2)       : %6.3f\n", m.cf);
  std::printf("  PC   (Eq 4)       : %6.3f  (pc_health %5.3f)\n", m.pc, m.pc_health);
  std::printf("  DDT  (Eq 5)       : %6.3f\n", m.ddt);
  std::printf("  DR   (C-rate)     : %6.3f\n", m.dr_c_rate);
  return 0;
}
