// lifetime_forecast: the proactive-maintenance toolchain — run the cluster
// for two simulated months, probe the worst battery every ten days (the
// Fig 3-5 instrumentation), fit the fade with the SoH estimator, decompose
// the duty into a rainflow cycle spectrum, and cross-check the two lifetime
// predictions (§IV-D's "proactively predicts battery lifetime").

#include <cstdio>
#include <vector>

#include "battery/rainflow.hpp"
#include "sim/experiment.hpp"
#include "telemetry/soh.hpp"

int main() {
  using namespace baat;

  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.policy = core::PolicyKind::Baat;
  sim::Cluster cluster{cfg};

  // Record the worst node's SoC series for rainflow analysis.
  std::vector<double> soc_series;
  cluster.set_tick_observer([&](const sim::TickObservation& obs) {
    soc_series.push_back((*obs.batteries)[0].soc());
  });

  telemetry::SohEstimator soh;
  soh.add_probe(0.0, 1.0);

  sim::MultiDayOptions opts;
  opts.days = 60;
  opts.weather = sim::mixed_weather(opts.days, 2, 3, 1);
  opts.probe_every_days = 10;
  opts.keep_days = false;
  const sim::MultiDayResult run = sim::run_multi_day(cluster, opts);
  for (const sim::MonthlyProbe& p : run.monthly) {
    soh.add_probe(p.month * 10.0, p.capacity_fraction / run.monthly[0].capacity_fraction);
  }

  std::printf("SoH fit over %zu probes: fade %.4f %%/day\n", soh.probe_count(),
              soh.fade_per_day() * 100.0);
  if (const auto eol = soh.projected_eol_day()) {
    std::printf("projected end-of-life (80%% rule): day %.0f (~%.1f months)\n", *eol,
                *eol / 30.0);
  }

  const auto spectrum = battery::rainflow_count(soc_series);
  const auto curve = battery::curve_for(battery::Manufacturer::Trojan);
  const double efc = battery::equivalent_full_cycles(spectrum);
  const double damage = battery::rainflow_damage(spectrum, curve);
  std::printf("\nrainflow over 60 days of node-0 duty:\n");
  std::printf("  %zu counted cycles, %.1f equivalent full cycles (%.2f/day)\n",
              spectrum.size(), efc, efc / 60.0);
  std::printf("  Miner damage vs Trojan curve: %.4f (1.0 = worn out)\n", damage);
  if (damage > 0.0) {
    std::printf("  throughput-based lifetime: %.0f days\n", 60.0 / damage);
  }
  return 0;
}
