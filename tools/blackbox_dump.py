#!/usr/bin/env python3
"""Pretty-printer for crash flight-recorder bundles (DESIGN.md §5g).

A `blackbox-<day>/` bundle is what baatsim leaves behind when the run-health
watchdog trips, an exception escapes the day loop, or the process takes a
fatal signal. This tool renders one readably:

  MANIFEST.json   why/when the run died (day, reason, health score)
  health.txt      the watchdog's incident report, verbatim
  metrics.json    counter/gauge summary (top rows)
  ledger.csv      per-mechanism aging attribution at death
  trace.jsonl     the last events before death (tail)
  cluster.snap    snapshot container header (magic, version, CRC check)

Every malformed-bundle path exits with a one-line diagnosis (exit 2), never
a traceback. `--self-test` builds a synthetic bundle in a temp directory,
renders it, and checks the malformed-input guards — CI runs it to prove the
dump tooling itself works before anyone needs it at 3am.

Usage:
  blackbox_dump.py <bundle-dir> [--trace-tail N] [--metrics-rows N]
  blackbox_dump.py --self-test
"""

import argparse
import json
import os
import struct
import sys
import zlib

SNAP_MAGIC = b"BAATSNAP"
SNAP_HEADER = struct.Struct("<8sIQQI")  # magic, version, config hash, size, crc


def fail(msg):
    sys.exit(f"blackbox_dump: {msg}")


def read_text(bundle, name, required=True):
    path = os.path.join(bundle, name)
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            return f.read()
    except OSError as e:
        if required:
            fail(f"cannot read {path}: {e.strerror or e}")
        return None


def load_manifest(bundle):
    text = read_text(bundle, "MANIFEST.json")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        fail(f"{bundle}/MANIFEST.json is not valid JSON: {e}")
    if not isinstance(doc, dict) or "day" not in doc or "reason" not in doc:
        fail(f"{bundle}/MANIFEST.json is not a blackbox manifest "
             "(needs 'day' and 'reason')")
    return doc


def snap_header(bundle):
    """Parse and verify the cluster.snap container header; None if absent
    (mid-day deaths ship the bundle without a snapshot)."""
    path = os.path.join(bundle, "cluster.snap")
    if not os.path.exists(path):
        return None
    try:
        with open(path, "rb") as f:
            raw = f.read()
    except OSError as e:
        fail(f"cannot read {path}: {e.strerror or e}")
    if len(raw) < SNAP_HEADER.size:
        fail(f"{path} is truncated: {len(raw)} bytes, header needs "
             f"{SNAP_HEADER.size}")
    magic, version, config_hash, size, crc = SNAP_HEADER.unpack_from(raw)
    if magic != SNAP_MAGIC:
        fail(f"{path} is not a BAAT snapshot (bad magic)")
    payload = raw[SNAP_HEADER.size:]
    if len(payload) != size:
        fail(f"{path} is truncated or padded: header declares {size} payload "
             f"bytes but the file holds {len(payload)}")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        fail(f"{path} is corrupted: payload CRC mismatch")
    return {"version": version, "config_hash": config_hash, "payload_bytes": size}


def render(bundle, trace_tail, metrics_rows, out=sys.stdout):
    if not os.path.isdir(bundle):
        fail(f"'{bundle}' is not a directory (expected a blackbox-<day>/ bundle)")
    manifest = load_manifest(bundle)

    p = out.write
    p(f"=== flight recorder: {bundle} ===\n")
    p(f"day          : {manifest['day']}\n")
    p(f"sim time     : {manifest.get('sim_time', '?')} s\n")
    p(f"health score : {manifest.get('health_score', '?')} "
      f"({manifest.get('incidents', '?')} incidents)\n")
    reason = str(manifest["reason"])
    first_line = reason.splitlines()[0] if reason else "(empty)"
    p(f"reason       : {first_line}\n")

    health = read_text(bundle, "health.txt", required=False)
    if health is not None:
        p("\n--- health.txt ---\n")
        p(health if health.endswith("\n") else health + "\n")

    ledger = read_text(bundle, "ledger.csv", required=False)
    if ledger is not None:
        p("\n--- ledger.csv (aging attribution at death) ---\n")
        p(ledger if ledger.endswith("\n") else ledger + "\n")

    metrics = read_text(bundle, "metrics.json", required=False)
    if metrics is not None:
        p("\n--- metrics.json ---\n")
        try:
            doc = json.loads(metrics)
        except json.JSONDecodeError as e:
            fail(f"{bundle}/metrics.json is not valid JSON: {e}")
        # The registry writes {"counters": {"name" or "name{label}": value},
        # "gauges": {...}, "histograms": {...}} — flat maps, already tagged.
        shown = 0
        for section in ("counters", "gauges"):
            rows = doc.get(section, {})
            if not isinstance(rows, dict):
                fail(f"{bundle}/metrics.json: '{section}' is not an object")
            for tag, value in rows.items():
                if shown >= metrics_rows:
                    break
                p(f"  {tag:42s} {value}\n")
                shown += 1
        if shown == 0:
            p("  (no counters or gauges)\n")

    trace = read_text(bundle, "trace.jsonl", required=False)
    if trace is not None:
        lines = [l for l in trace.splitlines() if l.strip()]
        p(f"\n--- trace.jsonl (last {min(trace_tail, len(lines))} of "
          f"{len(lines)} events) ---\n")
        for line in lines[-trace_tail:]:
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{bundle}/trace.jsonl has a malformed event line: {e}")
            detail = ev.get("detail", "")
            p(f"  t={ev.get('ts', '?'):>10} {ev.get('kind', '?'):16s} "
              f"node={ev.get('node', '?'):>3} value={ev.get('value', '?')}"
              f"{'  ' + detail if detail else ''}\n")

    snap = snap_header(bundle)
    p("\n--- cluster.snap ---\n")
    if snap is None:
        p("  absent (the run died mid-day; snapshots only exist at day "
          "boundaries)\n")
    else:
        p(f"  format v{snap['version']}, config hash "
          f"{snap['config_hash']:016x}, payload {snap['payload_bytes']} bytes, "
          "CRC OK\n")
    return manifest


def self_test():
    import io
    import tempfile

    def expect_exit(label, fn):
        try:
            fn()
        except SystemExit as e:
            msg = str(e.code)
            assert "Traceback" not in msg, label
            return msg
        raise AssertionError(f"{label}: expected a readable failure, got none")

    with tempfile.TemporaryDirectory() as tmp:
        bundle = os.path.join(tmp, "blackbox-3")
        os.mkdir(bundle)

        def put(name, text):
            with open(os.path.join(bundle, name), "w", encoding="utf-8") as f:
                f.write(text)

        put("MANIFEST.json", json.dumps({
            "format": 1, "day": 3, "reason": "watchdog: nan", "sim_time": 259200.0,
            "health_score": 1000.0, "incidents": 1}))
        put("health.txt", "health score 1000 from 1 incident(s)\n"
            "  [fatal] day 3 node 1 finite_state value=nan\n")
        put("metrics.json", json.dumps({
            "counters": {"health.fatal": 1, "sim.days_run": 3},
            "gauges": {"node.health{1}": 0.82}, "histograms": {}}))
        put("ledger.csv", "scope,node,fade_corrosion,fade_shedding,fade_sulphation,"
            "fade_stratification,fade_water_loss,fade_total,cycle_damage,efc,"
            "low_soc_dwell_s\ntotal,cluster,1e-05,0,0,0,0,1e-05,0.01,1.5,0\n")
        put("trace.jsonl", json.dumps({
            "ts": 259200.0, "kind": "health", "node": 1, "value": "nan",
            "detail": "fatal:finite_state"}) + "\n")
        payload = b"\x01\x02\x03\x04"
        with open(os.path.join(bundle, "cluster.snap"), "wb") as f:
            f.write(SNAP_HEADER.pack(SNAP_MAGIC, 2, 0xDEADBEEF, len(payload),
                                     zlib.crc32(payload) & 0xFFFFFFFF))
            f.write(payload)

        # Happy path: renders and reports the manifest back.
        out = io.StringIO()
        manifest = render(bundle, trace_tail=16, metrics_rows=16, out=out)
        assert manifest["day"] == 3, manifest
        text = out.getvalue()
        for needle in ("watchdog: nan", "health score 1000", "fade_corrosion",
                       "health.fatal", "format v2", "CRC OK"):
            assert needle in text, f"rendered output lacks {needle!r}:\n{text}"

        # Corrupt snapshot payload → CRC refusal, not a traceback.
        with open(os.path.join(bundle, "cluster.snap"), "r+b") as f:
            f.seek(SNAP_HEADER.size)
            f.write(b"\xFF")
        msg = expect_exit("corrupt snap", lambda: snap_header(bundle))
        assert "CRC" in msg, msg

        # Malformed manifest → readable refusal.
        put("MANIFEST.json", "{not json")
        msg = expect_exit("bad manifest",
                          lambda: render(bundle, 16, 16, io.StringIO()))
        assert "JSON" in msg, msg

        # Missing bundle directory.
        msg = expect_exit("missing dir",
                          lambda: render(os.path.join(tmp, "nope"), 16, 16,
                                         io.StringIO()))
        assert "not a directory" in msg, msg

    print("blackbox_dump: self-test OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bundle", nargs="?", help="blackbox-<day>/ bundle directory")
    ap.add_argument("--trace-tail", type=int, default=20,
                    help="trace events to show from the end (default 20)")
    ap.add_argument("--metrics-rows", type=int, default=24,
                    help="metrics rows to show (default 24)")
    ap.add_argument("--self-test", action="store_true",
                    help="build a synthetic bundle, render it, check the guards")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return
    if not args.bundle:
        ap.error("a bundle directory is required unless --self-test")
    render(args.bundle, args.trace_tail, args.metrics_rows)


if __name__ == "__main__":
    main()
