#!/usr/bin/env python3
"""CI perf-regression gate for the tick kernel (DESIGN.md §5e).

Compares a fresh kernel_bench run against the committed baseline
(bench_results/BENCH_kernel.json) and fails when any shared bench's
machine-normalized ns/cell-tick regressed by more than the threshold, or
when a bench that was allocation-free started allocating. Within-run
ratio rules ride along: the observability/ledger tax on the 48-cell config
must stay under its budget, the --math=simd tier must beat the
--math=fast tier by at least --simd-speedup-min on the 384-cell config
(the vectorization guarantee DESIGN.md §5f advertises), and the
--chemistry bucket tier must beat the lead-acid exact kernel by at least
--bucket-speedup-min at the same bank size (DESIGN.md §5i).

Machines differ, so raw nanoseconds are not comparable across hosts: both
files carry a `calibration_ns` scalar (a fixed dependent-FMA loop timed on
the same host as the bench). The gate compares ns_per_cell_tick divided by
that scalar, which cancels first-order machine-speed differences.

Refreshing the baseline mirrors the golden-file convention
(BAAT_UPDATE_GOLDEN): rerun the full bench on a quiet machine and pass
--update, or run the `bench-kernel` cmake target which writes straight to
bench_results/BENCH_kernel.json.

Every malformed-input path exits with a readable one-line diagnosis (exit
code 2), never a traceback: a gate that crashes looks like CI
infrastructure flakiness and gets retried instead of read.

Usage:
  perf_gate.py --baseline bench_results/BENCH_kernel.json \
               --current build/bench/BENCH_kernel.json [--threshold 0.15]
  perf_gate.py --baseline ... --current ... --update
  perf_gate.py --self-test
"""

import argparse
import json
import shutil
import sys


def fail(msg):
    """Readable gate failure: diagnosis on stderr, exit 2 (1 = perf regression)."""
    sys.exit(f"perf_gate: {msg}")


def numeric(doc_path, key, value):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        fail(f"{doc_path}: '{key}' must be a number, got {value!r}")
    return float(value)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")
    if not isinstance(doc, dict) or "calibration_ns" not in doc or "benches" not in doc:
        fail(f"{path} is not a kernel_bench result file "
             "(needs 'calibration_ns' and 'benches')")
    if numeric(path, "calibration_ns", doc["calibration_ns"]) <= 0:
        fail(f"{path} has a non-positive calibration scalar "
             f"({doc['calibration_ns']!r}); rerun kernel_bench on a quiet machine")
    if not isinstance(doc["benches"], list):
        fail(f"{path}: 'benches' must be a list")
    for i, b in enumerate(doc["benches"]):
        if not isinstance(b, dict) or "name" not in b:
            fail(f"{path}: bench entry #{i} has no 'name'")
        for key in ("ns_per_cell_tick", "allocs_per_tick"):
            if key not in b:
                fail(f"{path}: bench '{b['name']}' is missing '{key}' — "
                     "baseline and bench binary are out of sync; refresh the "
                     "baseline with --update")
            numeric(path, f"{b['name']}.{key}", b[key])
        if b["ns_per_cell_tick"] <= 0:
            fail(f"{path}: bench '{b['name']}' has non-positive ns_per_cell_tick "
                 f"({b['ns_per_cell_tick']!r})")
    return doc


def gate(base, cur, threshold):
    """Compare two loaded docs; returns (report_lines, failure_lines)."""
    base_by_name = {b["name"]: b for b in base["benches"]}
    cur_by_name = {b["name"]: b for b in cur["benches"]}

    shared = [n for n in base_by_name if n in cur_by_name]
    if not shared:
        fail("no benches shared between baseline and current run")

    lines = []
    failures = []
    for name in shared:
        b, c = base_by_name[name], cur_by_name[name]
        b_norm = b["ns_per_cell_tick"] / base["calibration_ns"]
        c_norm = c["ns_per_cell_tick"] / cur["calibration_ns"]
        ratio = c_norm / b_norm
        flag = ""
        if ratio > 1.0 + threshold:
            flag = "  REGRESSED"
            failures.append(f"{name}: normalized ns/cell-tick {ratio:.2f}x baseline "
                            f"(limit {1.0 + threshold:.2f}x)")
        # An allocation-free loop that starts allocating is a regression at
        # any speed — per-tick heap traffic is what the kernel removed.
        if b["allocs_per_tick"] < 0.005 and c["allocs_per_tick"] >= 0.005:
            flag += "  ALLOCATES"
            failures.append(f"{name}: allocs/tick {c['allocs_per_tick']:.4f} "
                            f"(baseline {b['allocs_per_tick']:.4f})")
        lines.append(f"{name:16s} baseline {b['ns_per_cell_tick']:8.2f} ns  "
                     f"current {c['ns_per_cell_tick']:8.2f} ns  "
                     f"normalized ratio {ratio:5.2f}x{flag}")

    for name in base_by_name:
        if name not in cur_by_name:
            failures.append(f"{name}: present in baseline but missing from current run")
    return shared, lines, failures


def obs_tax(doc, threshold):
    """Instrumented-vs-off comparison inside one run: the ledger/obs tax on
    the 48-cell config must stay under `threshold`. Both numbers come from
    the same process on the same host, so no calibration is involved. Older
    result files without the obs-off bench are skipped, not failed."""
    by_name = {b["name"]: b for b in doc["benches"]}
    on = by_name.get("fleet_48")
    off = by_name.get("fleet_48_obs_off")
    if on is None or off is None:
        return [], []
    tax = on["ns_per_cell_tick"] / off["ns_per_cell_tick"] - 1.0
    lines = [f"obs+ledger tax   instrumented {on['ns_per_cell_tick']:8.2f} ns  "
             f"obs-off {off['ns_per_cell_tick']:8.2f} ns  tax {tax * 100:+5.1f}%"]
    failures = []
    if tax > threshold:
        failures.append(f"obs+ledger tax {tax * 100:.1f}% on fleet_48 exceeds the "
                        f"{threshold * 100:.0f}% budget (instrumented "
                        f"{on['ns_per_cell_tick']:.2f} ns vs obs-off "
                        f"{off['ns_per_cell_tick']:.2f} ns per cell-tick)")
    return lines, failures


def simd_speedup(doc, minimum):
    """Fast-vs-simd comparison inside one run: the lane-batched tier must
    beat the scalar fast tier by at least `minimum` on the 384-cell config.
    Both rows are min-over-segments from the same process on the same host
    (kernel_bench interleaves their repeats), so no calibration is involved.
    Result files without the pair — older baselines, or a build with
    BAAT_SIMD gating — are skipped, not failed."""
    by_name = {b["name"]: b for b in doc["benches"]}
    fast = by_name.get("fleet_384_fast")
    simd = by_name.get("fleet_384_simd")
    if fast is None or simd is None:
        return [], []
    speedup = fast["ns_per_cell_tick"] / simd["ns_per_cell_tick"]
    lines = [f"simd speedup     fast {fast['ns_per_cell_tick']:8.2f} ns  "
             f"simd {simd['ns_per_cell_tick']:8.2f} ns  "
             f"speedup {speedup:5.2f}x (min {minimum:.2f}x)"]
    failures = []
    if speedup < minimum:
        failures.append(f"simd speedup {speedup:.2f}x on fleet_384 is below the "
                        f"{minimum:.2f}x floor (fast "
                        f"{fast['ns_per_cell_tick']:.2f} ns vs simd "
                        f"{simd['ns_per_cell_tick']:.2f} ns per cell-tick)")
    return lines, failures


def sharding_tax(doc, threshold):
    """Within-run comparison for datacenter_bench results: the 100k-cell /
    16-shard flagship must not pay more than `threshold` per node-tick over
    the unsharded reference config (same per-shard node count and demand, so
    the ratio isolates the sharding layer's merge/dispatch overhead). Files
    without the pair — kernel_bench results, quick-mode runs — are skipped,
    not failed."""
    by_name = {b["name"]: b for b in doc["benches"]}
    ref = by_name.get("dc_ref_6250")
    sharded = by_name.get("dc_100k_16shard")
    if ref is None or sharded is None:
        return [], []
    tax = sharded["ns_per_cell_tick"] / ref["ns_per_cell_tick"] - 1.0
    lines = [f"sharding tax     16-shard {sharded['ns_per_cell_tick']:8.2f} ns  "
             f"unsharded {ref['ns_per_cell_tick']:8.2f} ns  tax {tax * 100:+5.1f}%"]
    failures = []
    if tax > threshold:
        failures.append(f"sharding tax {tax * 100:.1f}% on dc_100k_16shard exceeds "
                        f"the {threshold * 100:.0f}% budget (sharded "
                        f"{sharded['ns_per_cell_tick']:.2f} ns vs unsharded "
                        f"{ref['ns_per_cell_tick']:.2f} ns per node-tick)")
    return lines, failures


def bucket_speedup(doc, minimum):
    """Within-run comparison for the energy-bucket chemistry tier: its
    384-cell row must beat the lead-acid exact kernel at the same bank size
    by at least `minimum` — the cheapness guarantee the --chemistry bucket
    tier exists for (DESIGN.md §5i). Both rows are min-over-segments from
    the same process on the same host, so no calibration is involved. Files
    without the pair — older baselines, datacenter results — are skipped,
    not failed."""
    by_name = {b["name"]: b for b in doc["benches"]}
    exact = by_name.get("fleet_384")
    bucket = by_name.get("fleet_384_bucket")
    if exact is None or bucket is None:
        return [], []
    speedup = exact["ns_per_cell_tick"] / bucket["ns_per_cell_tick"]
    lines = [f"bucket speedup   exact {exact['ns_per_cell_tick']:7.2f} ns  "
             f"bucket {bucket['ns_per_cell_tick']:7.2f} ns  "
             f"speedup {speedup:5.2f}x (min {minimum:.2f}x)"]
    failures = []
    if speedup < minimum:
        failures.append(f"bucket speedup {speedup:.2f}x on fleet_384 is below the "
                        f"{minimum:.2f}x floor (exact "
                        f"{exact['ns_per_cell_tick']:.2f} ns vs bucket "
                        f"{bucket['ns_per_cell_tick']:.2f} ns per cell-tick)")
    return lines, failures


def self_test():
    """Exercise the malformed-input paths in-process; exits non-zero on bugs."""
    import copy
    import os
    import tempfile

    good = {"calibration_ns": 2.0,
            "benches": [{"name": "tick", "ns_per_cell_tick": 10.0,
                         "allocs_per_tick": 0.0}]}

    def expect_exit(label, fn):
        try:
            fn()
        except SystemExit as e:
            # Any traceback-free refusal is a pass; argparse-style int codes ok.
            msg = str(e.code)
            assert "Traceback" not in msg, label
            return msg
        raise AssertionError(f"{label}: expected a readable gate failure, got none")

    def check_load(label, doc, needle):
        with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
            json.dump(doc, f)
            path = f.name
        try:
            msg = expect_exit(label, lambda: load(path))
            assert needle in msg, f"{label}: diagnosis {msg!r} lacks {needle!r}"
        finally:
            os.unlink(path)

    # 1. zero / negative / absent / non-numeric calibration
    zero_cal = copy.deepcopy(good)
    zero_cal["calibration_ns"] = 0
    check_load("zero calibration", zero_cal, "calibration")
    neg_cal = copy.deepcopy(good)
    neg_cal["calibration_ns"] = -1.0
    check_load("negative calibration", neg_cal, "calibration")
    no_cal = copy.deepcopy(good)
    del no_cal["calibration_ns"]
    check_load("absent calibration", no_cal, "calibration_ns")
    str_cal = copy.deepcopy(good)
    str_cal["calibration_ns"] = "fast"
    check_load("string calibration", str_cal, "number")

    # 2. bench entry missing a key (baseline older than the bench binary)
    no_key = copy.deepcopy(good)
    del no_key["benches"][0]["allocs_per_tick"]
    check_load("missing bench key", no_key, "allocs_per_tick")
    zero_ns = copy.deepcopy(good)
    zero_ns["benches"][0]["ns_per_cell_tick"] = 0.0
    check_load("zero ns baseline", zero_ns, "non-positive")

    # 3. unreadable / malformed files
    msg = expect_exit("missing file", lambda: load("/nonexistent/BENCH.json"))
    assert "cannot read" in msg, msg
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
        f.write("{not json")
        path = f.name
    try:
        msg = expect_exit("malformed json", lambda: load(path))
        assert "not valid JSON" in msg, msg
    finally:
        os.unlink(path)

    # 4. disjoint bench sets refuse rather than vacuously pass
    other = {"calibration_ns": 2.0,
             "benches": [{"name": "other", "ns_per_cell_tick": 5.0,
                          "allocs_per_tick": 0.0}]}
    expect_exit("no shared benches", lambda: gate(good, other, 0.15))

    # 5. the obs-tax rule: over-budget fails, within-budget and absent pass
    taxed = {"calibration_ns": 2.0,
             "benches": [{"name": "fleet_48", "ns_per_cell_tick": 11.0,
                          "allocs_per_tick": 0.0},
                         {"name": "fleet_48_obs_off", "ns_per_cell_tick": 10.0,
                          "allocs_per_tick": 0.0}]}
    _, failures = obs_tax(taxed, 0.05)
    assert any("tax" in f for f in failures), failures
    _, failures = obs_tax(taxed, 0.15)
    assert not failures, failures
    _, failures = obs_tax(good, 0.05)  # no obs-off bench: skipped, not failed
    assert not failures, failures

    # 5b. the simd-speedup rule: below-floor fails, at/above passes, and a
    # run without the fast/simd pair (e.g. BAAT_SIMD gated off) is skipped
    paired = {"calibration_ns": 2.0,
              "benches": [{"name": "fleet_384_fast", "ns_per_cell_tick": 50.0,
                           "allocs_per_tick": 0.0},
                          {"name": "fleet_384_simd", "ns_per_cell_tick": 30.0,
                           "allocs_per_tick": 0.0}]}
    _, failures = simd_speedup(paired, 2.0)
    assert any("speedup" in f for f in failures), failures
    _, failures = simd_speedup(paired, 1.5)
    assert not failures, failures
    _, failures = simd_speedup(good, 2.0)  # no simd pair: skipped, not failed
    assert not failures, failures

    # 5b2. the bucket-speedup rule: below-floor fails, at/above passes, and
    # a run without the exact/bucket pair is skipped, not failed
    bucketed = {"calibration_ns": 2.0,
                "benches": [{"name": "fleet_384", "ns_per_cell_tick": 200.0,
                             "allocs_per_tick": 0.0},
                            {"name": "fleet_384_bucket", "ns_per_cell_tick": 50.0,
                             "allocs_per_tick": 0.0}]}
    _, failures = bucket_speedup(bucketed, 5.0)
    assert any("bucket speedup" in f for f in failures), failures
    _, failures = bucket_speedup(bucketed, 4.0)
    assert not failures, failures
    _, failures = bucket_speedup(good, 5.0)  # no bucket pair: skipped
    assert not failures, failures

    # 5c. the sharding-tax rule: over-budget fails, within-budget passes,
    # and a file without the datacenter pair (kernel results) is skipped
    dc = {"calibration_ns": 2.0,
          "benches": [{"name": "dc_ref_6250", "ns_per_cell_tick": 100.0,
                       "allocs_per_tick": 0.1},
                      {"name": "dc_100k_16shard", "ns_per_cell_tick": 140.0,
                       "allocs_per_tick": 0.1}]}
    _, failures = sharding_tax(dc, 0.25)
    assert any("sharding tax" in f for f in failures), failures
    _, failures = sharding_tax(dc, 0.50)
    assert not failures, failures
    _, failures = sharding_tax(good, 0.25)  # no datacenter pair: skipped
    assert not failures, failures

    # 6. the happy path still gates
    slow = copy.deepcopy(good)
    slow["benches"][0]["ns_per_cell_tick"] = 100.0
    _, _, failures = gate(good, slow, 0.15)
    assert any("baseline" in f for f in failures), failures
    _, _, clean = gate(good, copy.deepcopy(good), 0.15)
    assert not clean, clean
    missing_cur = copy.deepcopy(good)
    missing_cur["benches"] = [{"name": "extra", "ns_per_cell_tick": 5.0,
                               "allocs_per_tick": 0.0},
                              dict(good["benches"][0])]
    _, _, failures = gate(missing_cur, {"calibration_ns": 2.0,
                                        "benches": [dict(good["benches"][0])]}, 0.15)
    assert any("missing from current" in f for f in failures), failures

    print("perf_gate: self-test OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="committed BENCH_kernel.json")
    ap.add_argument("--current", help="freshly measured BENCH_kernel.json")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed normalized slowdown (default 0.15 = 15%%)")
    ap.add_argument("--obs-tax-threshold", type=float, default=0.05,
                    help="max allowed instrumented-vs-obs-off overhead on the "
                         "48-cell config (default 0.05 = 5%%)")
    ap.add_argument("--simd-speedup-min", type=float, default=2.0,
                    help="min required fast/simd ns ratio on the 384-cell "
                         "config (default 2.0 = simd at least 2x faster)")
    ap.add_argument("--bucket-speedup-min", type=float, default=5.0,
                    help="min required lead-acid-exact/bucket ns ratio on the "
                         "384-cell config (default 5.0 = the energy-bucket "
                         "chemistry tier at least 5x faster)")
    ap.add_argument("--sharding-tax-threshold", type=float, default=0.25,
                    help="max allowed 16-shard-vs-unsharded ns/node-tick "
                         "overhead in datacenter_bench results (default "
                         "0.25 = 25%% — the 100k-cell row's working set is "
                         "~16x the reference's, so cache/TLB effects put "
                         "double-digit noise on the within-run ratio)")
    ap.add_argument("--update", action="store_true",
                    help="copy --current over --baseline instead of gating")
    ap.add_argument("--self-test", action="store_true",
                    help="exercise the malformed-input guards and exit")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required unless --self-test")

    if args.update:
        try:
            shutil.copyfile(args.current, args.baseline)
        except OSError as e:
            fail(f"cannot refresh baseline: {e.strerror or e}")
        print(f"perf_gate: baseline {args.baseline} refreshed from {args.current}")
        return

    base = load(args.baseline)
    cur = load(args.current)
    shared, lines, failures = gate(base, cur, args.threshold)
    tax_lines, tax_failures = obs_tax(cur, args.obs_tax_threshold)
    lines += tax_lines
    failures += tax_failures
    simd_lines, simd_failures = simd_speedup(cur, args.simd_speedup_min)
    lines += simd_lines
    failures += simd_failures
    bucket_lines, bucket_failures = bucket_speedup(cur, args.bucket_speedup_min)
    lines += bucket_lines
    failures += bucket_failures
    shard_lines, shard_failures = sharding_tax(cur, args.sharding_tax_threshold)
    lines += shard_lines
    failures += shard_failures
    for line in lines:
        print(line)

    if failures:
        print("\nperf_gate: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("\nIf the change is an accepted tradeoff, refresh the baseline on a\n"
              "quiet machine: cmake --build build --target bench-kernel\n"
              "(or rerun kernel_bench and pass --update).", file=sys.stderr)
        sys.exit(1)
    print(f"perf_gate: OK ({len(shared)} benches within "
          f"{args.threshold * 100:.0f}% of baseline)")


if __name__ == "__main__":
    main()
