#!/usr/bin/env python3
"""CI perf-regression gate for the tick kernel (DESIGN.md §5e).

Compares a fresh kernel_bench run against the committed baseline
(bench_results/BENCH_kernel.json) and fails when any shared bench's
machine-normalized ns/cell-tick regressed by more than the threshold, or
when a bench that was allocation-free started allocating.

Machines differ, so raw nanoseconds are not comparable across hosts: both
files carry a `calibration_ns` scalar (a fixed dependent-FMA loop timed on
the same host as the bench). The gate compares ns_per_cell_tick divided by
that scalar, which cancels first-order machine-speed differences.

Refreshing the baseline mirrors the golden-file convention
(BAAT_UPDATE_GOLDEN): rerun the full bench on a quiet machine and pass
--update, or run the `bench-kernel` cmake target which writes straight to
bench_results/BENCH_kernel.json.

Usage:
  perf_gate.py --baseline bench_results/BENCH_kernel.json \
               --current build/bench/BENCH_kernel.json [--threshold 0.15]
  perf_gate.py --baseline ... --current ... --update
"""

import argparse
import json
import shutil
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "calibration_ns" not in doc or "benches" not in doc:
        sys.exit(f"perf_gate: {path} is not a kernel_bench result file")
    if doc["calibration_ns"] <= 0:
        sys.exit(f"perf_gate: {path} has a non-positive calibration scalar")
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="committed BENCH_kernel.json")
    ap.add_argument("--current", required=True, help="freshly measured BENCH_kernel.json")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed normalized slowdown (default 0.15 = 15%%)")
    ap.add_argument("--update", action="store_true",
                    help="copy --current over --baseline instead of gating")
    args = ap.parse_args()

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"perf_gate: baseline {args.baseline} refreshed from {args.current}")
        return

    base = load(args.baseline)
    cur = load(args.current)
    base_by_name = {b["name"]: b for b in base["benches"]}
    cur_by_name = {b["name"]: b for b in cur["benches"]}

    shared = [n for n in base_by_name if n in cur_by_name]
    if not shared:
        sys.exit("perf_gate: no benches shared between baseline and current run")

    failures = []
    for name in shared:
        b, c = base_by_name[name], cur_by_name[name]
        b_norm = b["ns_per_cell_tick"] / base["calibration_ns"]
        c_norm = c["ns_per_cell_tick"] / cur["calibration_ns"]
        ratio = c_norm / b_norm
        flag = ""
        if ratio > 1.0 + args.threshold:
            flag = "  REGRESSED"
            failures.append(f"{name}: normalized ns/cell-tick {ratio:.2f}x baseline "
                            f"(limit {1.0 + args.threshold:.2f}x)")
        # An allocation-free loop that starts allocating is a regression at
        # any speed — per-tick heap traffic is what the kernel removed.
        if b["allocs_per_tick"] < 0.005 and c["allocs_per_tick"] >= 0.005:
            flag += "  ALLOCATES"
            failures.append(f"{name}: allocs/tick {c['allocs_per_tick']:.4f} "
                            f"(baseline {b['allocs_per_tick']:.4f})")
        print(f"{name:16s} baseline {b['ns_per_cell_tick']:8.2f} ns  "
              f"current {c['ns_per_cell_tick']:8.2f} ns  "
              f"normalized ratio {ratio:5.2f}x{flag}")

    missing = [n for n in base_by_name if n not in cur_by_name]
    for name in missing:
        failures.append(f"{name}: present in baseline but missing from current run")

    if failures:
        print("\nperf_gate: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("\nIf the change is an accepted tradeoff, refresh the baseline on a\n"
              "quiet machine: cmake --build build --target bench-kernel\n"
              "(or rerun kernel_bench and pass --update).", file=sys.stderr)
        sys.exit(1)
    print(f"perf_gate: OK ({len(shared)} benches within "
          f"{args.threshold * 100:.0f}% of baseline)")


if __name__ == "__main__":
    main()
