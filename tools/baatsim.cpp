// baatsim — command-line front end for the BAAT green-datacenter simulator.
// All logic lives in sim::run_cli so it is unit-testable; this is only the
// argv shim and the error boundary.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "obs/blackbox.hpp"
#include "sim/cli.hpp"

int main(int argc, char** argv) {
  // Flight recorder: a fatal signal or uncaught exception during the run
  // dumps a blackbox bundle before the process dies (run_cli arms the hook).
  baat::obs::install_crash_handlers();
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    return baat::sim::run_cli(baat::sim::parse_cli(args));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "baatsim: %s\n\n%s", e.what(),
                 baat::sim::cli_usage().c_str());
    return 2;
  }
}
