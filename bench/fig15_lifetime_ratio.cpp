// Fig 15 — battery lifetime vs server-to-battery capacity ratio (W/Ah).
// Paper: raising the ratio from 2 to 10 W/Ah cuts average battery lifetime
// ~35%; BAAT's advantage over e-Buff grows from ~37% to ~1.4x as the system
// becomes power-constrained; and doubling the installed battery improves
// lifetime by less than 30%.
//
// The ratio x policy x seed grid runs on the parallel sweep engine; set
// BAAT_JOBS to pick the worker count (the output is identical either way).

#include <map>
#include <vector>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

int main() {
  using namespace baat;
  bench::print_header("Fig 15 — battery lifetime vs server-to-battery ratio (W/Ah)",
                      "2→10 W/Ah: −35% avg lifetime; BAAT gain grows 37%→1.4x; "
                      "doubling battery gains <30%");

  const sim::ScenarioConfig base = sim::prototype_scenario();
  const std::vector<double> ratios{2.0, 4.0, 6.0, 8.0, 10.0};
  constexpr double kSunshine = 0.5;
  constexpr std::size_t kSimDays = 45;
  const std::uint64_t kSeeds[] = {42, 1042};
  const core::PolicyKind policies[] = {core::PolicyKind::EBuff, core::PolicyKind::Baat};

  constexpr std::size_t kPolicies = 2;
  constexpr std::size_t kSeedCount = 2;
  const std::size_t n_points = ratios.size() * kPolicies * kSeedCount;
  const std::vector<double> lifetimes = sim::sweep_map(n_points, [&](std::size_t i) {
    const std::size_t si = i % kSeedCount;
    const std::size_t pi = (i / kSeedCount) % kPolicies;
    const std::size_t ri = i / (kSeedCount * kPolicies);
    sim::ScenarioConfig cfg = sim::with_server_battery_ratio(base, ratios[ri]);
    cfg.seed = kSeeds[si];
    return sim::estimate_lifetime(cfg, policies[pi], kSunshine, kSimDays)
        .lifetime_days;
  });
  auto seed_avg = [&](std::size_t ri, std::size_t pi) {
    double sum = 0.0;
    for (std::size_t si = 0; si < kSeedCount; ++si) {
      sum += lifetimes[(ri * kPolicies + pi) * kSeedCount + si];
    }
    return sum / 2.0;
  };

  auto csv = bench::open_csv("fig15_lifetime_ratio",
                             {"watts_per_ah", "ebuff_days", "baat_days",
                              "baat_gain_pct"});

  std::map<double, double> ebuff_life;
  std::map<double, double> baat_life;
  std::printf("%10s %12s %12s %12s\n", "W/Ah", "e-Buff", "BAAT", "BAAT gain");
  for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
    const double ratio = ratios[ri];
    ebuff_life[ratio] = seed_avg(ri, 0);
    baat_life[ratio] = seed_avg(ri, 1);
    const double gain = (baat_life[ratio] / ebuff_life[ratio] - 1.0) * 100.0;
    std::printf("%10.0f %11.0fd %11.0fd %+11.0f%%\n", ratio, ebuff_life[ratio],
                baat_life[ratio], gain);
    csv.write_row({util::CsvWriter::cell(ratio),
                   util::CsvWriter::cell(ebuff_life[ratio]),
                   util::CsvWriter::cell(baat_life[ratio]),
                   util::CsvWriter::cell(gain)});
  }

  const double avg_drop =
      (1.0 - 0.5 * (ebuff_life[10.0] + baat_life[10.0]) /
                 (0.5 * (ebuff_life[2.0] + baat_life[2.0]))) *
      100.0;
  std::printf("\nmeasured: 2→10 W/Ah average lifetime drop %.0f%% (paper 35%%)\n",
              avg_drop);
  std::printf("measured: BAAT gain at 2 W/Ah %+.0f%%, at 10 W/Ah %+.0f%% "
              "(paper: 37%% → 140%%)\n",
              (baat_life[2.0] / ebuff_life[2.0] - 1.0) * 100.0,
              (baat_life[10.0] / ebuff_life[10.0] - 1.0) * 100.0);
  // Doubling the battery = halving the ratio.
  std::printf("measured: doubling battery (8→4 W/Ah) extends e-Buff life by "
              "%+.0f%% (paper: <30%% — battery sizing saturates)\n",
              (ebuff_life[4.0] / ebuff_life[8.0] - 1.0) * 100.0);
  bench::print_footer();
  return 0;
}
