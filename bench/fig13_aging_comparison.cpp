// Fig 13 — aging-metric comparison of the four power management policies
// (Table 4) on matched solar traces, for young and old fleets on sunny and
// cloudy days. Paper claims reproduced here:
//   * e-Buff's Ah throughput is ~35% higher on cloudy days than sunny;
//   * e-Buff cycles ~1.3× more Ah than BAAT on average, up to ~2.1× in the
//     worst case (cloudy + old battery);
//   * BAAT cuts the worst-case weighted aging speed by ~38% (Eq 6, equal
//     weights).
//
// The {fleet, weather, policy} grid runs on the parallel sweep engine; each
// job rebuilds its matched solar days from the same named RNG stream, so
// every policy still sees the identical supply and the output is identical
// at any BAAT_JOBS worker count.

#include <map>

#include "bench_util.hpp"
#include "core/weighted_aging.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace {

struct CellResult {
  double worst_ah = 0.0;
  double nat = 0.0;
  double cf = 0.0;
  double pc_health = 0.0;
  double ddt = 0.0;
  double weighted = 0.0;
};

}  // namespace

int main() {
  using namespace baat;
  bench::print_header(
      "Fig 13 — worst-node aging metrics, 4 policies x {young,old} x {sunny,cloudy}",
      "e-Buff NAT +35% cloudy vs sunny; e-Buff/BAAT Ah 1.3x avg, 2.1x worst; "
      "BAAT -38% worst-case weighted aging");

  const sim::ScenarioConfig cfg = sim::prototype_scenario();
  const core::PolicyKind policies[] = {core::PolicyKind::EBuff, core::PolicyKind::BaatS,
                                       core::PolicyKind::BaatH, core::PolicyKind::Baat};
  const bool fleets[] = {false, true};
  const solar::DayType weathers[] = {solar::DayType::Sunny, solar::DayType::Cloudy};
  const core::AgingWeights equal{1.0 / 3, 1.0 / 3, 1.0 / 3};

  auto csv = bench::open_csv("fig13_aging_comparison",
                             {"fleet", "weather", "policy", "worst_ah", "nat", "cf",
                              "pc_health", "ddt", "weighted_aging"});

  // The prototype's batteries are in continuous service — a measured day
  // starts from wherever yesterday left the fleet, not from a full charge.
  // Warm every cluster up with three matched days of the same weather, then
  // measure the fourth (all four policies see identical solar traces: the
  // day stream is re-derived from the same seed inside every job).
  constexpr int kWarmupDays = 3;
  constexpr std::size_t kPolicies = 4;
  const std::size_t n_cells = 2 * 2 * kPolicies;
  const std::vector<CellResult> cells = sim::sweep_map(n_cells, [&](std::size_t i) {
    const core::PolicyKind p = policies[i % kPolicies];
    const solar::DayType type = weathers[(i / kPolicies) % 2];
    const bool old_fleet = fleets[i / (kPolicies * 2)];

    std::vector<solar::SolarDay> days;
    util::Rng day_rng = util::Rng::stream(cfg.seed, "fig13-days");
    for (int d = 0; d <= kWarmupDays; ++d) {
      days.emplace_back(cfg.plant, type, day_rng.fork("day"));
    }

    sim::ScenarioConfig local = cfg;
    local.policy = p;
    sim::Cluster cluster{local};
    if (old_fleet) sim::seed_aged_fleet(cluster, sim::six_month_aged_state());
    for (int d = 0; d < kWarmupDays; ++d) cluster.run_day(days[d]);
    const sim::DayResult r = cluster.run_day(days.back());
    const auto& m = r.nodes[r.worst_node()].metrics_day;
    return CellResult{r.nodes[r.worst_node()].ah_discharged.value(), m.nat, m.cf,
                      m.pc_health, m.ddt, core::weighted_aging(m, equal)};
  });

  std::map<std::string, double> ah;        // (fleet|weather|policy) → worst Ah
  std::map<std::string, double> weighted;  // same → Eq 6 score

  std::size_t idx = 0;
  for (bool old_fleet : fleets) {
    for (solar::DayType type : weathers) {
      std::printf("%s fleet, %s day:\n", old_fleet ? "old" : "young",
                  std::string(solar::day_type_name(type)).c_str());
      std::printf("  %-8s %9s %9s %7s %10s %7s %10s\n", "policy", "worstAh", "NAT",
                  "CF", "PC-health", "DDT", "weighted");
      for (core::PolicyKind p : policies) {
        const CellResult& c = cells[idx++];
        const std::string key = std::string(old_fleet ? "old" : "young") + "|" +
                                std::string(solar::day_type_name(type)) + "|" +
                                std::string(core::policy_kind_name(p));
        ah[key] = c.worst_ah;
        weighted[key] = c.weighted;
        std::printf("  %-8s %9.1f %9.5f %7.2f %10.2f %7.2f %10.3f\n",
                    std::string(core::policy_kind_name(p)).c_str(), c.worst_ah,
                    c.nat, c.cf, c.pc_health, c.ddt, c.weighted);
        csv.write_row({old_fleet ? "old" : "young",
                       std::string(solar::day_type_name(type)),
                       std::string(core::policy_kind_name(p)),
                       util::CsvWriter::cell(c.worst_ah), util::CsvWriter::cell(c.nat),
                       util::CsvWriter::cell(c.cf), util::CsvWriter::cell(c.pc_health),
                       util::CsvWriter::cell(c.ddt),
                       util::CsvWriter::cell(c.weighted)});
      }
      std::printf("\n");
    }
  }

  const double ebuff_weather_gain =
      (ah["young|Cloudy|e-Buff"] / ah["young|Sunny|e-Buff"] - 1.0) * 100.0;
  const double avg_ratio = (ah["young|Sunny|e-Buff"] / ah["young|Sunny|BAAT"] +
                            ah["young|Cloudy|e-Buff"] / ah["young|Cloudy|BAAT"] +
                            ah["old|Sunny|e-Buff"] / ah["old|Sunny|BAAT"] +
                            ah["old|Cloudy|e-Buff"] / ah["old|Cloudy|BAAT"]) /
                           4.0;
  const double worst_ratio = ah["old|Cloudy|e-Buff"] / ah["old|Cloudy|BAAT"];
  const double aging_cut =
      (1.0 - weighted["old|Cloudy|BAAT"] / weighted["old|Cloudy|e-Buff"]) * 100.0;

  std::printf("measured: e-Buff Ah cloudy vs sunny: %+.0f%% (paper +35%%)\n",
              ebuff_weather_gain);
  std::printf("measured: e-Buff/BAAT Ah ratio: %.2fx avg (paper 1.3x), "
              "%.2fx cloudy+old (paper 2.1x)\n",
              avg_ratio, worst_ratio);
  std::printf("measured: BAAT worst-case weighted-aging reduction: %.0f%% "
              "(paper 38%%)\n",
              aging_cut);
  bench::print_footer();
  return 0;
}
