// Fig 10 — battery cycle life under varying depth of discharge, for the
// three manufacturers the paper plots (Hoppecke, Trojan, UPG).
// Paper: cycle life decreases by ~50% when the battery is frequently
// discharged at DoD above 50%.

#include "bench_util.hpp"
#include "battery/cycle_life.hpp"

int main() {
  using namespace baat;
  using battery::Manufacturer;

  bench::print_header("Fig 10 — cycle life vs depth of discharge",
                      "cycle life halves when frequently discharged above 50% DoD");

  auto csv = bench::open_csv("fig10_cycle_life",
                             {"dod_pct", "hoppecke", "trojan", "upg"});

  const auto hoppecke = battery::curve_for(Manufacturer::Hoppecke);
  const auto trojan = battery::curve_for(Manufacturer::Trojan);
  const auto upg = battery::curve_for(Manufacturer::UPG);

  std::printf("%8s %12s %12s %12s\n", "DoD(%)", "Hoppecke", "Trojan", "UPG");
  for (int pct = 10; pct <= 100; pct += 10) {
    const double dod = pct / 100.0;
    std::printf("%8d %12.0f %12.0f %12.0f\n", pct, hoppecke.cycles(dod),
                trojan.cycles(dod), upg.cycles(dod));
    csv.write_row({util::CsvWriter::cell(static_cast<double>(pct)),
                   util::CsvWriter::cell(hoppecke.cycles(dod)),
                   util::CsvWriter::cell(trojan.cycles(dod)),
                   util::CsvWriter::cell(upg.cycles(dod))});
  }

  std::printf("\nmeasured 50%%-DoD / 25%%-DoD cycle-life ratio: "
              "Hoppecke %.2f, Trojan %.2f, UPG %.2f (paper: ~0.5)\n",
              hoppecke.cycles(0.5) / hoppecke.cycles(0.25),
              trojan.cycles(0.5) / trojan.cycles(0.25),
              upg.cycles(0.5) / upg.cycles(0.25));
  bench::print_footer();
  return 0;
}
