// Fig 16 — annual battery depreciation cost versus the aging-slowdown
// threshold. Paper: raising the threshold lets batteries offload more
// burden, extending lifetime and cutting cost; BAAT achieves ~26% annual
// depreciation savings over e-Buff (but over-throttling wastes performance).
//
// The e-Buff baseline and the five threshold points run on the parallel
// sweep engine; set BAAT_JOBS to pick the worker count.

#include <vector>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

int main() {
  using namespace baat;
  bench::print_header("Fig 16 — annual depreciation cost vs slowdown threshold",
                      "BAAT cuts annual battery depreciation ~26% vs e-Buff");

  const sim::ScenarioConfig base = sim::prototype_scenario();
  const core::CostParams cost;
  constexpr double kSunshine = 0.5;
  constexpr std::size_t kSimDays = 45;
  const std::vector<double> triggers{0.20, 0.30, 0.40, 0.50, 0.60};

  // Job 0 is the e-Buff baseline; jobs 1..N are the BAAT threshold points.
  const std::vector<sim::LifetimeSummary> runs =
      sim::sweep_map(1 + triggers.size(), [&](std::size_t i) {
        if (i == 0) {
          return sim::estimate_lifetime(base, core::PolicyKind::EBuff, kSunshine,
                                        kSimDays);
        }
        sim::ScenarioConfig cfg = base;
        cfg.policy_params.slowdown.soc_trigger = triggers[i - 1];
        cfg.policy_params.slowdown.soc_recover = triggers[i - 1] + 0.15;
        return sim::estimate_lifetime(cfg, core::PolicyKind::Baat, kSunshine,
                                      kSimDays);
      });

  const sim::LifetimeSummary& ebuff = runs[0];
  const double ebuff_cost =
      core::annual_battery_depreciation(cost, ebuff.lifetime_days / 365.0).value();

  auto csv = bench::open_csv("fig16_depreciation_cost",
                             {"soc_trigger", "lifetime_days", "annual_cost_usd",
                              "saving_vs_ebuff_pct", "throughput"});

  std::printf("e-Buff baseline: lifetime %.0f d, annual depreciation $%.0f\n\n",
              ebuff.lifetime_days, ebuff_cost);
  std::printf("%12s %12s %12s %10s %12s\n", "SoC trigger", "lifetime", "$/year",
              "saving", "work(Mcs)");

  double best_saving = 0.0;
  for (std::size_t i = 0; i < triggers.size(); ++i) {
    const double trigger = triggers[i];
    const sim::LifetimeSummary& baat = runs[i + 1];
    const double annual =
        core::annual_battery_depreciation(cost, baat.lifetime_days / 365.0).value();
    const double saving = (1.0 - annual / ebuff_cost) * 100.0;
    best_saving = std::max(best_saving, saving);
    std::printf("%12.2f %11.0fd %12.0f %9.0f%% %12.1f\n", trigger,
                baat.lifetime_days, annual, saving, baat.throughput / 1e6);
    csv.write_row({util::CsvWriter::cell(trigger),
                   util::CsvWriter::cell(baat.lifetime_days),
                   util::CsvWriter::cell(annual), util::CsvWriter::cell(saving),
                   util::CsvWriter::cell(baat.throughput)});
  }

  std::printf("\nmeasured: best annual depreciation saving %.0f%% (paper 26%%); "
              "note the throughput column — aggressive thresholds trade "
              "performance, as §VI-D cautions\n",
              best_saving);
  bench::print_footer();
  return 0;
}
