// Fig 19 — distribution of battery SoC over a long window, per policy, in
// the paper's seven bins (SoC1 [0,15) ... SoC7 [90,100]). Paper: e-Buff
// tends to create low-SoC batteries, whereas BAAT shifts the most likely
// SoC region toward 90–100%.

#include "bench_util.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace baat;
  bench::print_header("Fig 19 — SoC distribution over 30 days (7 bins, node-time share)",
                      "BAAT shifts the modal SoC region toward 90-100%");

  const sim::ScenarioConfig base = sim::prototype_scenario();
  constexpr std::size_t kDays = 30;
  const auto weather = sim::mixed_weather(kDays, 2, 3, 2);

  auto csv = bench::open_csv(
      "fig19_soc_distribution",
      {"policy", "soc1", "soc2", "soc3", "soc4", "soc5", "soc6", "soc7"});

  std::printf("%-8s", "policy");
  const char* labels[] = {"[0,15)", "[15,30)", "[30,45)", "[45,60)",
                          "[60,75)", "[75,90)", "[90,100]"};
  for (const char* l : labels) std::printf("%9s", l);
  std::printf("\n");

  double ebuff_top = 0.0;
  for (core::PolicyKind p : {core::PolicyKind::EBuff, core::PolicyKind::BaatS,
                             core::PolicyKind::BaatH, core::PolicyKind::Baat}) {
    sim::ScenarioConfig cfg = base;
    cfg.policy = p;
    sim::Cluster cluster{cfg};
    sim::MultiDayOptions opts;
    opts.days = kDays;
    opts.weather = weather;
    opts.probe_every_days = 0;
    opts.keep_days = false;
    const sim::MultiDayResult run = sim::run_multi_day(cluster, opts);

    std::printf("%-8s", std::string(core::policy_kind_name(p)).c_str());
    std::vector<std::string> row{std::string(core::policy_kind_name(p))};
    for (std::size_t b = 0; b < run.soc_histogram.bin_count(); ++b) {
      const double frac = run.soc_histogram.fraction(b) * 100.0;
      std::printf("%8.1f%%", frac);
      row.push_back(util::CsvWriter::cell(frac));
    }
    std::printf("\n");
    csv.write_row(row);
    const double top = run.soc_histogram.fraction(6);
    if (p == core::PolicyKind::EBuff) ebuff_top = top;
    if (p == core::PolicyKind::Baat) {
      std::printf("\nmeasured: time share in [90,100]: e-Buff %.1f%%, BAAT %.1f%% "
                  "(paper: BAAT shifts the mode toward 90-100%%)\n",
                  ebuff_top * 100.0, top * 100.0);
    }
  }
  bench::print_footer();
  return 0;
}
