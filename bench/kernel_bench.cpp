// Perf-regression harness for the hot-path tick kernel (DESIGN.md §5e).
//
// Measures the batched SoA fleet kernel at several bank sizes, the
// object-per-cell Battery::step loop as the reference shape, and the
// --math=fast / --math=simd tiers, under a load-following workload:
// the per-cell demand magnitude varies every tick (10–25.5 A, well above
// the C/20 rated current, so the Peukert and Arrhenius transcendentals are
// live on every tick — the regime the math tiers exist for), with the sign
// flipping at SoC 0.2/0.9 like a peak-shaving cycle.
//
// Methodology: only the kernel call itself is timed (the synthetic demand
// generator and trajectory bookkeeping around it are not the system under
// test), and each row reports the minimum over kSegments contiguous
// segments of the timed window — min-of-segments rejects the transient
// background noise a single long stretch averages in, which matters for
// the within-run ratio gates (obs-tax, simd-speedup) in tools/perf_gate.py.
// Reports ns per cell-tick, fleet ticks/second and heap allocations per
// tick (the steady-state loop must be allocation-free), plus a
// machine-speed calibration scalar so the CI gate can compare runs across
// hosts.
//
// Usage: kernel_bench [--quick] [--out <path>]
//   --quick   ~10x fewer ticks — the ctest smoke mode. Numbers are noisy;
//             only the committed full run is gate-worthy.
//   --out     JSON output path (default: BENCH_kernel.json in the cwd).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "battery/battery.hpp"
#include "battery/chemistry_model.hpp"
#include "battery/fleet.hpp"

namespace {

// Allocation counter: every global new/delete bumps it. Single-threaded
// bench, so a plain counter is fine; the sized/aligned overloads all
// funnel through the counting pair.
std::size_t g_allocs = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace baat;

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point t0, Clock::time_point t1) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

/// Fixed floating-point workload: a dependent multiply-add chain no smarter
/// compiler can skip. The ratio of this number across two machines
/// approximates their scalar-FP speed ratio, which is what the kernel is
/// bound by — the perf gate divides ns/cell-tick by it before comparing
/// against the committed baseline. Minimum over five repetitions: each rep
/// is only ~10 ms, so a single shot can land in a scheduler hiccup and
/// inflate by 2×, poisoning every normalized comparison; contention can
/// only ever slow the chain down, so the min is the clean measurement.
double calibration_ns() {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    // volatile on both ends: the seed stops constant folding, the sink makes
    // the chain's value (not just its sign) observable, so the compiler must
    // run every iteration.
    volatile double seed = 1.0;
    double x = seed;
    const long kIters = 5'000'000;
    const auto t0 = Clock::now();
    for (long i = 0; i < kIters; ++i) {
      x = x * 0.999999999 + 1e-9;
    }
    const auto t1 = Clock::now();
    volatile double sink = x;
    (void)sink;
    best = std::min(best, elapsed_ns(t0, t1));
  }
  return best;
}

struct BenchResult {
  std::string name;
  std::size_t cells = 0;
  long ticks = 0;
  double ns_per_cell_tick = 0.0;
  double ticks_per_sec = 0.0;
  double allocs_per_tick = 0.0;
  double sink = 0.0;  ///< trajectory checksum — equal across equivalent paths
};

/// The shared workload: load-following demand at 60 s ticks. The magnitude
/// walks a deterministic 10–25.5 A pattern that changes every tick and
/// decorrelates across cells (so per-cell memo caches see realistic miss
/// rates instead of a constant-current free pass); the sign flips at
/// SoC 0.2/0.9; cells are detuned by capacity so trajectories decorrelate.
constexpr double kDt = 60.0;

/// Timed segments per row — each row reports min-over-segments. Segments
/// are deliberately short (a few ms) so at least some land between the
/// background-noise bursts a shared host throws at the run; the minimum
/// then tracks the kernel's true floor rather than the noise duty cycle.
constexpr int kSegments = 20;

double demand_amps(long tick, std::size_t i) {
  return 10.0 +
         0.5 * static_cast<double>((tick * 7 + static_cast<long>(i) * 13) % 32);
}

double cap_scale(std::size_t i) { return 1.0 + 0.001 * static_cast<double>(i % 7); }

/// Batched fleet kernel: one fleet_step per tick, with only the fleet_step
/// call inside the timed window. `ledger` toggles the aging-attribution
/// accounting (on by default in production) so the instrumented-vs-off
/// pair measures the observability tax directly.
BenchResult bench_fleet(std::size_t cells, long warmup, long ticks,
                        battery::MathMode math, const char* name,
                        bool ledger = true,
                        battery::Chemistry kind = battery::Chemistry::LeadAcid) {
  // Lead-acid uses the legacy ctor (the bit-identity reference); other
  // chemistries go through the model-hosting ctor, same as bank.cpp.
  battery::FleetState fleet =
      kind == battery::Chemistry::LeadAcid
          ? battery::FleetState{battery::LeadAcidParams{}, battery::AgingParams{},
                                battery::ThermalParams{}, math}
          : battery::FleetState{battery::chemistry_model(kind),
                                battery::ThermalParams{}, math};
  fleet.set_ledger_enabled(ledger);
  for (std::size_t i = 0; i < cells; ++i) fleet.add_cell(cap_scale(i), 1.0, 0.7);
  std::vector<double> sign(cells, 1.0);
  std::vector<util::Amperes> req(cells);
  std::vector<battery::StepResult> res(cells);
  const util::Seconds dt{kDt};
  double sink = 0.0;
  long tick_no = 0;
  auto fill = [&] {
    for (std::size_t i = 0; i < cells; ++i) {
      req[i] = util::Amperes{demand_amps(tick_no, i) * sign[i]};
    }
    ++tick_no;
  };
  auto account = [&] {
    for (std::size_t i = 0; i < cells; ++i) {
      sink += res[i].terminal_voltage.value();
      if (fleet.cell_soc(i) < 0.2) sign[i] = -1.0;
      if (fleet.cell_soc(i) > 0.9) sign[i] = 1.0;
    }
  };
  for (long k = 0; k < warmup; ++k) {
    fill();
    battery::fleet_step(fleet, req, dt, res);
    account();
  }
  const long per_seg = std::max<long>(1, ticks / kSegments);
  const std::size_t allocs0 = g_allocs;
  double best_ns = std::numeric_limits<double>::infinity();
  long timed_ticks = 0;
  for (int seg = 0; seg < kSegments; ++seg) {
    double seg_ns = 0.0;
    for (long k = 0; k < per_seg; ++k) {
      fill();
      const auto t0 = Clock::now();
      battery::fleet_step(fleet, req, dt, res);
      const auto t1 = Clock::now();
      seg_ns += elapsed_ns(t0, t1);
      account();
    }
    timed_ticks += per_seg;
    best_ns = std::min(best_ns,
                       seg_ns / (static_cast<double>(per_seg) *
                                 static_cast<double>(cells)));
  }
  const std::size_t allocs = g_allocs - allocs0;
  BenchResult r;
  r.name = name;
  r.cells = cells;
  r.ticks = timed_ticks;
  r.ns_per_cell_tick = best_ns;
  r.ticks_per_sec = 1e9 / (best_ns * static_cast<double>(cells));
  r.allocs_per_tick = static_cast<double>(allocs) / static_cast<double>(timed_ticks);
  r.sink = sink;
  return r;
}

/// Reference shape: one Battery object per cell, stepped in a loop — the
/// pre-kernel code structure, kept to show what the SoA batch buys. Same
/// workload and timing discipline as bench_fleet (only the per-cell step
/// loop is timed) so the row is directly comparable.
BenchResult bench_objects(std::size_t cells, long warmup, long ticks) {
  std::vector<battery::Battery> bats;
  bats.reserve(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    bats.emplace_back(battery::LeadAcidParams{}, battery::AgingParams{},
                      battery::ThermalParams{}, cap_scale(i), 1.0, 0.7);
  }
  std::vector<double> sign(cells, 1.0);
  std::vector<util::Amperes> req(cells);
  std::vector<battery::StepResult> res(cells);
  const util::Seconds dt{kDt};
  double sink = 0.0;
  long tick_no = 0;
  auto fill = [&] {
    for (std::size_t i = 0; i < cells; ++i) {
      req[i] = util::Amperes{demand_amps(tick_no, i) * sign[i]};
    }
    ++tick_no;
  };
  auto step_all = [&] {
    for (std::size_t i = 0; i < cells; ++i) res[i] = bats[i].step(req[i], dt);
  };
  auto account = [&] {
    for (std::size_t i = 0; i < cells; ++i) {
      sink += res[i].terminal_voltage.value();
      if (bats[i].soc() < 0.2) sign[i] = -1.0;
      if (bats[i].soc() > 0.9) sign[i] = 1.0;
    }
  };
  for (long k = 0; k < warmup; ++k) {
    fill();
    step_all();
    account();
  }
  const long per_seg = std::max<long>(1, ticks / kSegments);
  const std::size_t allocs0 = g_allocs;
  double best_ns = std::numeric_limits<double>::infinity();
  long timed_ticks = 0;
  for (int seg = 0; seg < kSegments; ++seg) {
    double seg_ns = 0.0;
    for (long k = 0; k < per_seg; ++k) {
      fill();
      const auto t0 = Clock::now();
      step_all();
      const auto t1 = Clock::now();
      seg_ns += elapsed_ns(t0, t1);
      account();
    }
    timed_ticks += per_seg;
    best_ns = std::min(best_ns,
                       seg_ns / (static_cast<double>(per_seg) *
                                 static_cast<double>(cells)));
  }
  const std::size_t allocs = g_allocs - allocs0;
  BenchResult r;
  r.name = "objects_48";
  r.cells = cells;
  r.ticks = timed_ticks;
  r.ns_per_cell_tick = best_ns;
  r.ticks_per_sec = 1e9 / (best_ns * static_cast<double>(cells));
  r.allocs_per_tick = static_cast<double>(allocs) / static_cast<double>(timed_ticks);
  r.sink = sink;
  return r;
}

void write_json(const std::string& path, double calib,
                const std::vector<BenchResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "kernel_bench: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  char buf[256];
  out << "{\n";
  std::snprintf(buf, sizeof buf, "  \"calibration_ns\": %.0f,\n", calib);
  out << buf;
  out << "  \"benches\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"cells\": %zu, \"ticks\": %ld, "
                  "\"ns_per_cell_tick\": %.3f, \"ticks_per_sec\": %.1f, "
                  "\"allocs_per_tick\": %.4f}%s\n",
                  r.name.c_str(), r.cells, r.ticks, r.ns_per_cell_tick,
                  r.ticks_per_sec, r.allocs_per_tick,
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_kernel.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: kernel_bench [--quick] [--out <path>]\n");
      return 2;
    }
  }
  const long warmup = quick ? 100 : 1000;
  const long ticks = quick ? 2000 : 20000;
  // Small banks get proportionally more ticks so every config's measured
  // window is long enough to ride out clock-ramp and timer granularity
  // (roughly constant cell-ticks per config, floored at `ticks`).
  auto ticks_for = [&](std::size_t cells) {
    return std::max(ticks, ticks * 48 / static_cast<long>(cells));
  };

  const double calib = calibration_ns();

  // The instrumented/obs-off pair is gated as a within-run ratio
  // (perf_gate.py's obs-tax rule), so both sides take the minimum over
  // interleaved repeats — min-of-N cancels the transient machine noise a
  // single back-to-back pair is fully exposed to.
  const int tax_reps = quick ? 1 : 3;
  const auto min_ns = [](BenchResult a, const BenchResult& b) {
    return b.ns_per_cell_tick < a.ns_per_cell_tick ? b : a;
  };
  BenchResult obs_on =
      bench_fleet(48, warmup, ticks, battery::MathMode::Exact, "fleet_48");
  BenchResult obs_off = bench_fleet(48, warmup, ticks, battery::MathMode::Exact,
                                    "fleet_48_obs_off", /*ledger=*/false);
  for (int rep = 1; rep < tax_reps; ++rep) {
    obs_on = min_ns(obs_on, bench_fleet(48, warmup, ticks, battery::MathMode::Exact,
                                        "fleet_48"));
    obs_off = min_ns(obs_off, bench_fleet(48, warmup, ticks, battery::MathMode::Exact,
                                          "fleet_48_obs_off", /*ledger=*/false));
  }

  // The fast/simd pair at 384 cells backs perf_gate.py's within-run
  // simd-speedup rule (simd must beat fast by >= 2x), so like the obs-tax
  // pair both sides take the minimum over interleaved repeats.
  BenchResult fast384 =
      bench_fleet(384, warmup, ticks, battery::MathMode::Fast, "fleet_384_fast");
  BenchResult simd384 =
      bench_fleet(384, warmup, ticks, battery::MathMode::Simd, "fleet_384_simd");
  for (int rep = 1; rep < tax_reps; ++rep) {
    fast384 = min_ns(fast384, bench_fleet(384, warmup, ticks, battery::MathMode::Fast,
                                          "fleet_384_fast"));
    simd384 = min_ns(simd384, bench_fleet(384, warmup, ticks, battery::MathMode::Simd,
                                          "fleet_384_simd"));
  }

  std::vector<BenchResult> results;
  results.push_back(
      bench_fleet(1, warmup, ticks_for(1), battery::MathMode::Exact, "fleet_1"));
  results.push_back(
      bench_fleet(6, warmup, ticks_for(6), battery::MathMode::Exact, "fleet_6"));
  results.push_back(obs_on);
  results.push_back(
      bench_fleet(384, warmup, ticks, battery::MathMode::Exact, "fleet_384"));
  results.push_back(bench_objects(48, warmup, ticks));
  results.push_back(
      bench_fleet(48, warmup, ticks, battery::MathMode::Fast, "fleet_48_fast"));
  results.push_back(fast384);
  results.push_back(
      bench_fleet(48, warmup, ticks, battery::MathMode::Simd, "fleet_48_simd"));
  results.push_back(simd384);
  // The energy-bucket tier's headline is raw tick cost: perf_gate.py's
  // bucket-speedup rule requires it to beat the lead-acid exact kernel at
  // the same bank size by >= 5x (same ledger setting, same workload).
  results.push_back(bench_fleet(384, warmup, ticks, battery::MathMode::Exact,
                                "fleet_384_bucket", /*ledger=*/true,
                                battery::Chemistry::Bucket));
  results.push_back(obs_off);

  std::printf("calibration_ns: %.0f%s\n", calib, quick ? "  (quick mode)" : "");
  for (const BenchResult& r : results) {
    std::printf(
        "%-14s cells=%-4zu ns/cell-tick=%8.2f  ticks/s=%10.0f  allocs/tick=%.4f  "
        "(sink %.3f)\n",
        r.name.c_str(), r.cells, r.ns_per_cell_tick, r.ticks_per_sec,
        r.allocs_per_tick, r.sink);
  }

  // The exact-tier fleet and object paths must trace identical physics —
  // equal checksums are the in-bench bit-identity check.
  double fleet48_sink = 0.0, objects_sink = 0.0;
  for (const BenchResult& r : results) {
    if (r.name == "fleet_48") fleet48_sink = r.sink;
    if (r.name == "objects_48") objects_sink = r.sink;
  }
  if (fleet48_sink != objects_sink) {
    std::fprintf(stderr,
                 "kernel_bench: fleet/object trajectory checksums differ "
                 "(%.17g vs %.17g) — the kernel is no longer bit-identical\n",
                 fleet48_sink, objects_sink);
    return 1;
  }

  // The ledger is pure accounting: switching it off must not move a single
  // bit of the physics trajectory.
  double obs_off_sink = fleet48_sink;
  for (const BenchResult& r : results) {
    if (r.name == "fleet_48_obs_off") obs_off_sink = r.sink;
  }
  if (obs_off_sink != fleet48_sink) {
    std::fprintf(stderr,
                 "kernel_bench: obs-off trajectory checksum differs from the "
                 "instrumented run (%.17g vs %.17g) — the ledger is leaking "
                 "into the physics\n",
                 obs_off_sink, fleet48_sink);
    return 1;
  }

  // The simd tier is toleranced, not bit-exact — but its trajectory must
  // stay close to the exact tier's. A loose relative bound on the voltage
  // checksum catches gross lane breakage (a wrong mask or a garbage lane
  // shifts the sum by orders of magnitude more than tier drift does).
  double simd48_sink = fleet48_sink;
  for (const BenchResult& r : results) {
    if (r.name == "fleet_48_simd") simd48_sink = r.sink;
  }
  const double sink_rel =
      std::fabs(simd48_sink - fleet48_sink) / std::fabs(fleet48_sink);
  if (!(sink_rel < 1e-3)) {
    std::fprintf(stderr,
                 "kernel_bench: simd trajectory checksum drifted %.3g relative "
                 "from exact (%.17g vs %.17g) — lane kernel is broken\n",
                 sink_rel, simd48_sink, fleet48_sink);
    return 1;
  }

  write_json(out_path, calib, results);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
