// Fig 18 — low-SoC duration comparison across policies. Paper: e-Buff lets
// batteries linger at low SoC (risking power-budget violations and a single
// point of failure when a spike hits an empty battery); BAAT balances and
// slows deep discharge, improving worst-node battery availability ~47%.

#include "bench_util.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace baat;
  bench::print_header("Fig 18 — low-SoC duration per policy (14-day window)",
                      "BAAT improves worst-node availability ~47% (low-SoC statistics)");

  const sim::ScenarioConfig base = sim::prototype_scenario();
  constexpr std::size_t kDays = 14;
  const auto weather = sim::mixed_weather(kDays, 2, 3, 1);  // battery-heavy mix

  auto csv = bench::open_csv("fig18_low_soc",
                             {"policy", "worst_low_soc_h", "worst_critical_h",
                              "brownouts", "availability_gain_pct"});

  double ebuff_critical = 0.0;
  std::printf("%-8s %16s %18s %10s\n", "policy", "worst <40% SoC",
              "worst <15% (SPOF)", "brownouts");
  for (core::PolicyKind p : {core::PolicyKind::EBuff, core::PolicyKind::BaatS,
                             core::PolicyKind::BaatH, core::PolicyKind::Baat}) {
    sim::ScenarioConfig cfg = base;
    cfg.policy = p;
    sim::Cluster cluster{cfg};
    sim::MultiDayOptions opts;
    opts.days = kDays;
    opts.weather = weather;
    opts.probe_every_days = 0;
    const sim::MultiDayResult run = sim::run_multi_day(cluster, opts);

    std::vector<double> low_soc(cluster.node_count(), 0.0);
    std::vector<double> critical(cluster.node_count(), 0.0);
    int brownouts = 0;
    for (const sim::DayResult& d : run.days) {
      for (std::size_t i = 0; i < d.nodes.size(); ++i) {
        low_soc[i] += d.nodes[i].low_soc_time.value() / 3600.0;
        critical[i] += d.nodes[i].critical_soc_time.value() / 3600.0;
        brownouts += d.nodes[i].brownouts;
      }
    }
    double worst_low = 0.0;
    double worst_crit = 0.0;
    for (std::size_t i = 0; i < low_soc.size(); ++i) {
      worst_low = std::max(worst_low, low_soc[i]);
      worst_crit = std::max(worst_crit, critical[i]);
    }
    if (p == core::PolicyKind::EBuff) ebuff_critical = worst_crit;
    const double gain =
        ebuff_critical > 0.0 ? (1.0 - worst_crit / ebuff_critical) * 100.0 : 0.0;
    std::printf("%-8s %14.1f h %16.1f h %10d\n",
                std::string(core::policy_kind_name(p)).c_str(), worst_low, worst_crit,
                brownouts);
    csv.write_row({std::string(core::policy_kind_name(p)),
                   util::CsvWriter::cell(worst_low), util::CsvWriter::cell(worst_crit),
                   util::CsvWriter::cell(static_cast<double>(brownouts)),
                   util::CsvWriter::cell(gain)});
    if (p == core::PolicyKind::Baat) {
      std::printf("\nmeasured: BAAT cuts the worst node's critical (<15%% SoC, "
                  "SPOF-risk) duration by %.0f%% (paper: 47%% availability "
                  "improvement from low-SoC statistics)\n",
                  gain);
    }
  }
  bench::print_footer();
  return 0;
}
