// Fig 21 — performance versus the planned depth of discharge (Eq 7 knob).
// Paper: performance grows with DoD but not linearly — the gain from 40% to
// 60% DoD is much more visible than from 70% to 90%, because very deep
// operation leaves the battery at low SoC (and wears it out faster).

#include "bench_util.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace baat;
  bench::print_header("Fig 21 — throughput vs planned DoD (old fleet, cloudy week)",
                      "gains from 40→60% DoD exceed gains from 70→90%; curve flattens");

  sim::ScenarioConfig base = sim::prototype_scenario();
  base.replicas = 3;  // saturated batch queue: throughput reflects management
  base.daily_jobs = sim::default_daily_jobs(base.replicas);
  constexpr std::size_t kDays = 7;
  const auto weather = sim::mixed_weather(kDays, 0, 3, 4);  // severely constrained

  auto csv = bench::open_csv("fig21_dod_performance",
                             {"dod_pct", "work_mcs", "gain_vs_40_pct",
                              "min_health_end"});

  std::printf("%8s %12s %12s %12s\n", "DoD(%)", "work(Mcs)", "vs DoD40", "min health");
  double work40 = 0.0;
  double prev_work = 0.0;
  double gain_40_60 = 0.0;
  double gain_70_90 = 0.0;
  for (int dod_pct : {40, 50, 60, 70, 80, 90}) {
    sim::ScenarioConfig cfg = base;
    // Choose Cycle_plan so Eq 7 lands exactly on the target DoD for a fresh
    // log: DoD = C_total / (Cycle_plan · C) → Cycle_plan = C_total/(DoD·C).
    const double dod = dod_pct / 100.0;
    cfg.policy_params.planned.cycles_plan =
        cfg.policy_params.planned.total_throughput.value() /
        (dod * cfg.policy_params.planned.nameplate.value());
    cfg.policy = core::PolicyKind::BaatPlanned;
    // Average two seeds per point to damp trace noise.
    sim::MultiDayResult run;
    double work_sum = 0.0;
    double min_health = 1.0;
    for (std::uint64_t seed : {std::uint64_t{42}, std::uint64_t{1042}, std::uint64_t{77}}) {
      cfg.seed = seed;
      sim::Cluster cluster{cfg};
      sim::seed_aged_fleet(cluster, sim::six_month_aged_state());
      sim::MultiDayOptions opts;
      opts.days = kDays;
      opts.weather = weather;
      opts.probe_every_days = 0;
      opts.keep_days = false;
      run = sim::run_multi_day(cluster, opts);
      work_sum += run.total_throughput;
      min_health = std::min(min_health, run.min_health_end);
    }
    run.total_throughput = work_sum / 3.0;
    run.min_health_end = min_health;

    if (dod_pct == 40) work40 = run.total_throughput;
    if (dod_pct == 60) gain_40_60 = run.total_throughput - work40;
    if (dod_pct == 70) prev_work = run.total_throughput;
    if (dod_pct == 90) gain_70_90 = run.total_throughput - prev_work;
    const double gain = (run.total_throughput / work40 - 1.0) * 100.0;
    std::printf("%8d %12.2f %+11.1f%% %12.3f\n", dod_pct, run.total_throughput / 1e6,
                gain, run.min_health_end);
    csv.write_row({util::CsvWriter::cell(static_cast<double>(dod_pct)),
                   util::CsvWriter::cell(run.total_throughput / 1e6),
                   util::CsvWriter::cell(gain),
                   util::CsvWriter::cell(run.min_health_end)});
  }

  std::printf("\nmeasured: Δwork 40→60%% DoD = %.2f Mcs, 70→90%% = %.2f Mcs (%s)\n",
              gain_40_60 / 1e6, gain_70_90 / 1e6,
              gain_40_60 > gain_70_90 ? "flattens, as in the paper"
                                      : "does NOT flatten");
  bench::print_footer();
  return 0;
}
