// Table 1 — battery usage scenarios in datacenters. The paper's taxonomy:
//
//   | usage            | frequency    | aging speed | aging variation |
//   | Power Backup     | Rarely       | Light       | Small           |
//   | Demand Response  | Occasionally | Medium      | Medium          |
//   | Power Smoothing  | Cyclically   | Severe      | Large           |
//
// We reproduce the two empirical columns by running a six-unit bank (with
// manufacturing spread) through each duty for 60 simulated days:
//   backup    — float at full; one 10-minute full-load outage per month;
//   response  — a 2-hour peak-shave discharge each weekday, utility recharge;
//   smoothing — green-datacenter cycling against intermittent solar.

#include <cmath>
#include <numeric>
#include <vector>

#include "bench_util.hpp"
#include "battery/bank.hpp"
#include "power/router.hpp"
#include "sim/multiday.hpp"
#include "solar/solar_day.hpp"

namespace {

using namespace baat;

constexpr int kDays = 60;
constexpr std::size_t kUnits = 6;

std::vector<battery::Battery> make_units(std::uint64_t seed) {
  battery::BankSpec spec;
  spec.units = kUnits;
  util::Rng rng{seed};
  return battery::make_bank(spec, rng);
}

struct ScenarioStats {
  double mean_fade_per_day = 0.0;  ///< aging speed
  double fade_spread = 0.0;        ///< aging variation (max − min fade)
};

ScenarioStats stats_of(const std::vector<battery::Battery>& units) {
  double lo = 1.0;
  double hi = 0.0;
  double sum = 0.0;
  for (const auto& b : units) {
    const double fade = 1.0 - b.health();
    lo = std::min(lo, fade);
    hi = std::max(hi, fade);
    sum += fade;
  }
  ScenarioStats s;
  s.mean_fade_per_day = sum / static_cast<double>(kUnits) / kDays;
  s.fade_spread = hi - lo;
  return s;
}

// Power Backup: float all day; one 10-minute 150 W outage per month.
ScenarioStats run_backup() {
  auto units = make_units(1);
  for (int day = 0; day < kDays; ++day) {
    for (int m = 0; m < 1440; ++m) {
      const bool outage = day % 30 == 10 && m >= 720 && m < 730;
      for (auto& b : units) {
        if (outage) {
          b.step(util::amperes(150.0 / 12.0), util::minutes(1.0));
        } else if (b.soc() < 0.999) {
          b.step(util::amperes(-b.max_charge_current().value()), util::minutes(1.0));
        } else {
          b.step(util::amperes(0.0), util::minutes(1.0));
        }
      }
    }
  }
  return stats_of(units);
}

// Demand Response: shave a 2-hour evening peak each weekday; per-unit peak
// depth varies with the rack it serves.
ScenarioStats run_demand_response(util::Rng rng) {
  auto units = make_units(2);
  std::vector<double> shave_amps;
  for (std::size_t i = 0; i < kUnits; ++i) shave_amps.push_back(rng.uniform(4.0, 9.0));
  for (int day = 0; day < kDays; ++day) {
    const bool weekday = day % 7 < 5;
    for (int m = 0; m < 1440; ++m) {
      const bool peak = weekday && m >= 17 * 60 && m < 19 * 60;
      for (std::size_t i = 0; i < kUnits; ++i) {
        auto& b = units[i];
        if (peak) {
          b.step(util::amperes(shave_amps[i]), util::minutes(1.0));
        } else if (b.soc() < 0.999) {
          b.step(util::amperes(-b.max_charge_current().value() * 0.5),
                 util::minutes(1.0));
        } else {
          b.step(util::amperes(0.0), util::minutes(1.0));
        }
      }
    }
  }
  return stats_of(units);
}

// Power Smoothing: per-node green cycling against intermittent solar with
// unbalanced server demand — the paper's (and this repo's) main scenario.
ScenarioStats run_smoothing() {
  auto units = make_units(3);
  std::vector<std::size_t> order(kUnits);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const double demand_w[kUnits] = {70.0, 85.0, 95.0, 105.0, 115.0, 130.0};
  util::Rng solar_rng{4};
  const auto weather = sim::mixed_weather(kDays, 2, 3, 2);
  for (int day = 0; day < kDays; ++day) {
    const solar::SolarDay sun{solar::PlantSpec{}, weather[static_cast<std::size_t>(day)],
                              solar_rng.fork("day")};
    for (int m = 0; m < 1440; ++m) {
      const util::Seconds tod{m * 60.0};
      const bool on = tod >= util::hours(8.5) && tod < util::hours(18.5);
      std::vector<util::Watts> demands(kUnits);
      for (std::size_t i = 0; i < kUnits; ++i) {
        demands[i] = util::watts(on ? demand_w[i] : 0.0);
      }
      power::route_power(sun.power(tod), demands, units, order,
                         power::RouterParams{}, util::minutes(1.0));
    }
  }
  return stats_of(units);
}

}  // namespace

int main() {
  using namespace baat;
  bench::print_header(
      "Table 1 — battery usage scenarios: aging speed and variation (60 days)",
      "backup: Light/Small; demand response: Medium/Medium; smoothing: Severe/Large");

  const ScenarioStats backup = run_backup();
  const ScenarioStats response = run_demand_response(util::Rng{7});
  const ScenarioStats smoothing = run_smoothing();

  auto csv = bench::open_csv("table01_usage_scenarios",
                             {"scenario", "fade_pct_per_day", "fade_spread_pct"});
  std::printf("%-16s %20s %18s\n", "usage", "aging speed (%/day)",
              "variation (pp)");
  for (const auto& [name, s] :
       {std::pair<const char*, const ScenarioStats&>{"Power Backup", backup},
        std::pair<const char*, const ScenarioStats&>{"Demand Response", response},
        std::pair<const char*, const ScenarioStats&>{"Power Smoothing", smoothing}}) {
    std::printf("%-16s %20.4f %18.3f\n", name, s.mean_fade_per_day * 100.0,
                s.fade_spread * 100.0);
    csv.write_row({name, util::CsvWriter::cell(s.mean_fade_per_day * 100.0),
                   util::CsvWriter::cell(s.fade_spread * 100.0)});
  }

  const bool speed_order = backup.mean_fade_per_day < response.mean_fade_per_day &&
                           response.mean_fade_per_day < smoothing.mean_fade_per_day;
  const bool var_order = backup.fade_spread < response.fade_spread &&
                         response.fade_spread < smoothing.fade_spread;
  std::printf("\nmeasured: aging-speed ordering backup < response < smoothing: %s; "
              "variation ordering: %s (Table 1's qualitative rows)\n",
              speed_order ? "HOLDS" : "violated", var_order ? "HOLDS" : "violated");
  bench::print_footer();
  return 0;
}
