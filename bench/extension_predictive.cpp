// Extension — predictive BAAT (BAAT-p). The paper's controller is reactive:
// it waits for the battery to cross the SoC knee before acting (Fig 9).
// BAAT-p adds the proactive element §IV-D gestures at: a persistence solar
// forecast budgets the remaining duty window, and the fleet is power-capped
// *before* the batteries get dragged through the deep-discharge band.
// Measures what prediction buys on top of the paper's design.

#include "bench_util.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace baat;
  bench::print_header(
      "Extension — reactive BAAT vs predictive BAAT-p (45 days x 2 seeds)",
      "beyond the paper: forecast-driven preemptive capping");

  auto csv = bench::open_csv("extension_predictive",
                             {"policy", "sunshine", "lifetime_days", "work_mcs",
                              "worst_low_soc_h_day"});

  std::printf("%-8s %10s %14s %10s %16s\n", "policy", "sunshine", "lifetime",
              "work(Mcs)", "lowSoC h/day");
  for (double sunshine : {0.3, 0.5}) {
    for (core::PolicyKind p : {core::PolicyKind::Baat, core::PolicyKind::BaatPredictive}) {
      double life_sum = 0.0;
      double work_sum = 0.0;
      double low_sum = 0.0;
      for (std::uint64_t seed : {std::uint64_t{42}, std::uint64_t{1042}}) {
        sim::ScenarioConfig cfg = sim::prototype_scenario();
        cfg.policy = p;
        cfg.seed = seed;
        sim::Cluster cluster{cfg};
        sim::MultiDayOptions opts;
        opts.days = 45;
        opts.sunshine_fraction = sunshine;
        opts.probe_every_days = 0;
        const sim::MultiDayResult run = sim::run_multi_day(cluster, opts);
        life_sum +=
            core::extrapolate_lifetime(1.0, run.min_health_end, 45.0).days;
        work_sum += run.total_throughput;
        for (const sim::DayResult& d : run.days) {
          low_sum += d.worst_low_soc_time().value() / 3600.0 / 45.0;
        }
      }
      std::printf("%-8s %10.2f %13.0fd %10.2f %16.2f\n",
                  std::string(core::policy_kind_name(p)).c_str(), sunshine,
                  life_sum / 2.0, work_sum / 2.0 / 1e6, low_sum / 2.0);
      csv.write_row({std::string(core::policy_kind_name(p)),
                     util::CsvWriter::cell(sunshine),
                     util::CsvWriter::cell(life_sum / 2.0),
                     util::CsvWriter::cell(work_sum / 2.0 / 1e6),
                     util::CsvWriter::cell(low_sum / 2.0)});
    }
  }
  std::printf("\nfinding: forecast-driven preemptive capping cuts the worst "
              "node's deep-discharge exposure and extends its life beyond "
              "reactive BAAT at essentially no throughput cost — the capped "
              "energy was going to be unservable anyway once the evening "
              "deficit arrived.\n");
  bench::print_footer();
  return 0;
}
