// Fig 20 — one-day compute throughput of the four policies. Paper: e-Buff
// looks best until the battery hits the cut-off and the server goes down;
// BAAT-s loses throughput to CPU capping; BAAT-h loses it to inefficient
// migration; BAAT wins the worst case (cloudy + old battery) by ~28%.

#include <map>

#include "bench_util.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace baat;
  bench::print_header("Fig 20 — one-day workload throughput, 4 policies",
                      "BAAT +28% vs e-Buff in the worst case (cloudy + old fleet)");

  // Throughput is measured under a saturated batch queue ("deploy and
  // iteratively run the workloads", §V-B): more jobs than the fleet can
  // hold, so delivered work depends on power management, and each cell is
  // measured after three matched warm-up days of the same weather.
  sim::ScenarioConfig base = sim::prototype_scenario();
  base.replicas = 3;
  base.daily_jobs = sim::default_daily_jobs(base.replicas);
  auto csv = bench::open_csv("fig20_throughput",
                             {"fleet", "weather", "policy", "work_mcs",
                              "downtime_h", "migrations", "dvfs"});

  std::map<std::string, double> work;
  for (bool old_fleet : {false, true}) {
    for (solar::DayType type : {solar::DayType::Sunny, solar::DayType::Cloudy}) {
      std::vector<solar::SolarDay> days;
      util::Rng day_rng = util::Rng::stream(base.seed, "fig20-days");
      for (int d = 0; d < 4; ++d) days.emplace_back(base.plant, type, day_rng.fork("day"));
      std::printf("%s fleet, %s day:\n", old_fleet ? "old" : "young",
                  std::string(solar::day_type_name(type)).c_str());
      for (core::PolicyKind p : {core::PolicyKind::EBuff, core::PolicyKind::BaatS,
                                 core::PolicyKind::BaatH, core::PolicyKind::Baat}) {
        sim::ScenarioConfig cfg = base;
        cfg.policy = p;
        sim::Cluster cluster{cfg};
        if (old_fleet) sim::seed_aged_fleet(cluster, sim::six_month_aged_state());
        for (int d = 0; d < 3; ++d) cluster.run_day(days[d]);
        const sim::DayResult r = cluster.run_day(days.back());
        const std::string key = std::string(old_fleet ? "old" : "young") + "|" +
                                std::string(solar::day_type_name(type)) + "|" +
                                std::string(core::policy_kind_name(p));
        work[key] = r.throughput_work;
        std::printf("  %-8s work %7.2f Mcs  downtime %5.1f h  migr %3d  dvfs %3d\n",
                    std::string(core::policy_kind_name(p)).c_str(),
                    r.throughput_work / 1e6, r.total_downtime().value() / 3600.0,
                    r.migrations, r.dvfs_transitions);
        csv.write_row({old_fleet ? "old" : "young",
                       std::string(solar::day_type_name(type)),
                       std::string(core::policy_kind_name(p)),
                       util::CsvWriter::cell(r.throughput_work / 1e6),
                       util::CsvWriter::cell(r.total_downtime().value() / 3600.0),
                       util::CsvWriter::cell(static_cast<double>(r.migrations)),
                       util::CsvWriter::cell(static_cast<double>(r.dvfs_transitions))});
      }
      std::printf("\n");
    }
  }

  const double worst_gain =
      (work["old|Cloudy|BAAT"] / work["old|Cloudy|e-Buff"] - 1.0) * 100.0;
  std::printf("measured: BAAT vs e-Buff in the worst case (cloudy + old): %+.0f%% "
              "(paper +28%%)\n",
              worst_gain);
  bench::print_footer();
  return 0;
}
