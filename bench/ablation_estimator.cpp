// Ablation — SoC estimation scheme. The controller only sees Table 2's
// sensors; on an aged fleet a naive voltage-lookup estimate biases hard low
// under load (the aged cell's grown resistance is unknown to the
// controller), sending BAAT into permanent panic throttling. The
// rest-anchored coulomb counter is the fix. This ablation quantifies the
// design note in DESIGN.md §5.

#include "bench_util.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace baat;
  bench::print_header(
      "Ablation — SoC estimation: rest-anchored coulomb vs voltage-only (old fleet)",
      "voltage-only mis-reads aged cells under load and over-throttles");

  auto csv = bench::open_csv("ablation_estimator",
                             {"estimator", "work_mcs", "dvfs_transitions",
                              "migrations", "mean_soc_error"});

  const sim::ScenarioConfig base = sim::prototype_scenario();
  std::printf("%-14s %10s %8s %8s %16s\n", "estimator", "work(Mcs)", "dvfs",
              "migr", "mean |SoC err|");
  for (telemetry::SocEstimation mode :
       {telemetry::SocEstimation::RestAnchoredCoulomb,
        telemetry::SocEstimation::VoltageOnly}) {
    sim::ScenarioConfig cfg = base;
    cfg.policy = core::PolicyKind::Baat;
    cfg.soc_estimation = mode;
    sim::Cluster cluster{cfg};
    sim::seed_aged_fleet(cluster, sim::six_month_aged_state());

    // Track estimation error against ground truth through the observer.
    double err_sum = 0.0;
    long err_n = 0;
    cluster.set_tick_observer([&](const sim::TickObservation& obs) {
      for (std::size_t i = 0; i < obs.batteries->size(); ++i) {
        err_sum += std::fabs((*obs.day_tables)[i].estimated_soc() -
                             (*obs.batteries)[i].soc());
        ++err_n;
      }
    });

    double work = 0.0;
    int dvfs = 0;
    int migr = 0;
    const auto weather = sim::mixed_weather(7, 2, 3, 2);
    util::Rng solar_rng = util::Rng::stream(cfg.seed, "ablation-estimator");
    for (solar::DayType t : weather) {
      const solar::SolarDay day{cfg.plant, t, solar_rng.fork("day")};
      const sim::DayResult r = cluster.run_day(day);
      work += r.throughput_work;
      dvfs += r.dvfs_transitions;
      migr += r.migrations;
    }

    const char* name = mode == telemetry::SocEstimation::VoltageOnly
                           ? "voltage-only"
                           : "rest-coulomb";
    const double mean_err = err_sum / static_cast<double>(err_n);
    std::printf("%-14s %10.2f %8d %8d %16.3f\n", name, work / 1e6, dvfs, migr,
                mean_err);
    csv.write_row({name, util::CsvWriter::cell(work / 1e6),
                   util::CsvWriter::cell(static_cast<double>(dvfs)),
                   util::CsvWriter::cell(static_cast<double>(migr)),
                   util::CsvWriter::cell(mean_err)});
  }
  bench::print_footer();
  return 0;
}
