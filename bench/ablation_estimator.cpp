// Ablation — SoC estimation scheme. The controller only sees Table 2's
// sensors; on an aged fleet a naive voltage-lookup estimate biases hard low
// under load (the aged cell's grown resistance is unknown to the
// controller), sending BAAT into permanent panic throttling. The
// rest-anchored coulomb counter is the fix. This ablation quantifies the
// design note in DESIGN.md §5. Both arms run concurrently on the parallel
// sweep engine.

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace {

struct ArmResult {
  double work = 0.0;
  int dvfs = 0;
  int migr = 0;
  double mean_err = 0.0;
};

}  // namespace

int main() {
  using namespace baat;
  bench::print_header(
      "Ablation — SoC estimation: rest-anchored coulomb vs voltage-only (old fleet)",
      "voltage-only mis-reads aged cells under load and over-throttles");

  const sim::ScenarioConfig base = sim::prototype_scenario();
  const telemetry::SocEstimation modes[] = {
      telemetry::SocEstimation::RestAnchoredCoulomb,
      telemetry::SocEstimation::VoltageOnly};

  const std::vector<ArmResult> arms = sim::sweep_map(2, [&](std::size_t i) {
    sim::ScenarioConfig cfg = base;
    cfg.policy = core::PolicyKind::Baat;
    cfg.soc_estimation = modes[i];
    sim::Cluster cluster{cfg};
    sim::seed_aged_fleet(cluster, sim::six_month_aged_state());

    // Track estimation error against ground truth through the observer.
    double err_sum = 0.0;
    long err_n = 0;
    cluster.set_tick_observer([&](const sim::TickObservation& obs) {
      for (std::size_t n = 0; n < obs.batteries->size(); ++n) {
        err_sum += std::fabs((*obs.day_tables)[n].estimated_soc() -
                             (*obs.batteries)[n].soc());
        ++err_n;
      }
    });

    ArmResult r;
    const auto weather = sim::mixed_weather(7, 2, 3, 2);
    util::Rng solar_rng = util::Rng::stream(cfg.seed, "ablation-estimator");
    for (solar::DayType t : weather) {
      const solar::SolarDay day{cfg.plant, t, solar_rng.fork("day")};
      const sim::DayResult dr = cluster.run_day(day);
      r.work += dr.throughput_work;
      r.dvfs += dr.dvfs_transitions;
      r.migr += dr.migrations;
    }
    r.mean_err = err_sum / static_cast<double>(err_n);
    return r;
  });

  auto csv = bench::open_csv("ablation_estimator",
                             {"estimator", "work_mcs", "dvfs_transitions",
                              "migrations", "mean_soc_error"});

  std::printf("%-14s %10s %8s %8s %16s\n", "estimator", "work(Mcs)", "dvfs",
              "migr", "mean |SoC err|");
  for (std::size_t i = 0; i < 2; ++i) {
    const char* name = modes[i] == telemetry::SocEstimation::VoltageOnly
                           ? "voltage-only"
                           : "rest-coulomb";
    const ArmResult& r = arms[i];
    std::printf("%-14s %10.2f %8d %8d %16.3f\n", name, r.work / 1e6, r.dvfs,
                r.migr, r.mean_err);
    csv.write_row({name, util::CsvWriter::cell(r.work / 1e6),
                   util::CsvWriter::cell(static_cast<double>(r.dvfs)),
                   util::CsvWriter::cell(static_cast<double>(r.migr)),
                   util::CsvWriter::cell(r.mean_err)});
  }
  bench::print_footer();
  return 0;
}
