// Fig 14 — battery lifetime vs solar energy availability (sunshine fraction,
// [41]) for the four policies. Paper: lifetime grows with sunshine; on
// average BAAT extends battery life by 69% over e-Buff, BAAT-s by 37% and
// BAAT-h by 29%; slowdown matters more than hiding.
//
// The fraction x policy x seed grid runs on the parallel sweep engine; set
// BAAT_JOBS to pick the worker count (the output is identical either way).

#include <map>
#include <vector>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

int main() {
  using namespace baat;
  bench::print_header("Fig 14 — battery lifetime vs sunshine fraction",
                      "BAAT +69% avg vs e-Buff; BAAT-s +37%; BAAT-h +29%; "
                      "lifetime grows with sunshine");

  const sim::ScenarioConfig cfg = sim::prototype_scenario();
  const std::vector<double> fractions{0.2, 0.35, 0.5, 0.65, 0.8};
  const core::PolicyKind policies[] = {core::PolicyKind::EBuff, core::PolicyKind::BaatS,
                                       core::PolicyKind::BaatH, core::PolicyKind::Baat};
  constexpr std::size_t kSimDays = 45;
  const std::uint64_t kSeeds[] = {42, 1042};  // average two runs per point

  // One job per (fraction, policy, seed) point; every job owns its cluster
  // and RNG streams, so the grid parallelises without sharing state.
  constexpr std::size_t kPolicies = 4;
  constexpr std::size_t kSeedCount = 2;
  const std::size_t n_points = fractions.size() * kPolicies * kSeedCount;
  const std::vector<double> lifetimes = sim::sweep_map(n_points, [&](std::size_t i) {
    const std::size_t si = i % kSeedCount;
    const std::size_t pi = (i / kSeedCount) % kPolicies;
    const std::size_t fi = i / (kSeedCount * kPolicies);
    sim::ScenarioConfig seeded = cfg;
    seeded.seed = kSeeds[si];
    return sim::estimate_lifetime(seeded, policies[pi], fractions[fi], kSimDays)
        .lifetime_days;
  });

  auto csv = bench::open_csv("fig14_lifetime_sunshine",
                             {"sunshine_fraction", "policy", "lifetime_days",
                              "gain_vs_ebuff_pct"});

  std::map<core::PolicyKind, double> gain_sum;
  std::printf("%10s %10s %10s %10s %10s\n", "sunshine", "e-Buff", "BAAT-s", "BAAT-h",
              "BAAT");
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    const double f = fractions[fi];
    std::map<core::PolicyKind, double> life;
    for (std::size_t pi = 0; pi < kPolicies; ++pi) {
      double sum = 0.0;
      for (std::size_t si = 0; si < kSeedCount; ++si) {
        sum += lifetimes[(fi * kPolicies + pi) * kSeedCount + si];
      }
      life[policies[pi]] = sum / 2.0;
    }
    std::printf("%10.2f %9.0fd %9.0fd %9.0fd %9.0fd\n", f,
                life[core::PolicyKind::EBuff], life[core::PolicyKind::BaatS],
                life[core::PolicyKind::BaatH], life[core::PolicyKind::Baat]);
    for (core::PolicyKind p : policies) {
      const double gain =
          (life[p] / life[core::PolicyKind::EBuff] - 1.0) * 100.0;
      gain_sum[p] += gain;
      csv.write_row({util::CsvWriter::cell(f),
                     std::string(core::policy_kind_name(p)),
                     util::CsvWriter::cell(life[p]), util::CsvWriter::cell(gain)});
    }
  }

  const double n = static_cast<double>(fractions.size());
  std::printf("\nmeasured average lifetime gain vs e-Buff: BAAT %+.0f%% (paper +69%%), "
              "BAAT-s %+.0f%% (paper +37%%), BAAT-h %+.0f%% (paper +29%%)\n",
              gain_sum[core::PolicyKind::Baat] / n,
              gain_sum[core::PolicyKind::BaatS] / n,
              gain_sum[core::PolicyKind::BaatH] / n);
  std::printf("slowdown vs hiding ordering: %s\n",
              gain_sum[core::PolicyKind::BaatS] > gain_sum[core::PolicyKind::BaatH]
                  ? "slowdown > hiding, as in the paper"
                  : "hiding > slowdown (differs from paper)");
  bench::print_footer();
  return 0;
}
