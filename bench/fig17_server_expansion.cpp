// Fig 17 — servers that can be added at constant TCO, funded by BAAT's
// battery-depreciation savings, versus sunshine fraction. Paper: up to ~15%
// more servers in sun-rich locations; the expansion ratio grows sublinearly
// because added servers age the batteries faster.
//
// The sunshine x policy grid runs on the parallel sweep engine; set
// BAAT_JOBS to pick the worker count.

#include <vector>

#include "bench_util.hpp"
#include "core/cost.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

int main() {
  using namespace baat;
  bench::print_header("Fig 17 — server expansion at constant TCO vs sunshine",
                      "up to +15% servers in solar-rich locations, sublinear");

  const sim::ScenarioConfig base = sim::prototype_scenario();
  const core::CostParams cost;
  constexpr std::size_t kSimDays = 45;
  const std::vector<double> fractions{0.2, 0.35, 0.5, 0.65, 0.8};

  // Even indices are e-Buff, odd indices BAAT, paired per fraction.
  const std::vector<double> years =
      sim::sweep_map(2 * fractions.size(), [&](std::size_t i) {
        const core::PolicyKind p =
            (i % 2 == 0) ? core::PolicyKind::EBuff : core::PolicyKind::Baat;
        return sim::estimate_lifetime(base, p, fractions[i / 2], kSimDays)
                   .lifetime_days /
               365.0;
      });

  auto csv = bench::open_csv("fig17_server_expansion",
                             {"sunshine_fraction", "ebuff_cost", "baat_cost",
                              "annual_saving_usd", "servers_addable",
                              "expansion_pct"});

  std::printf("%10s %12s %12s %12s %10s %10s\n", "sunshine", "e-Buff $/y",
              "BAAT $/y", "saving $/y", "servers", "expansion");
  double best = 0.0;
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    const double f = fractions[fi];
    const double c_ebuff =
        core::annual_battery_depreciation(cost, years[2 * fi]).value();
    const double c_baat =
        core::annual_battery_depreciation(cost, years[2 * fi + 1]).value();
    const double saving = std::max(0.0, c_ebuff - c_baat);
    const double servers =
        core::servers_addable_at_constant_tco(cost, util::dollars(saving));
    const double expansion = servers / static_cast<double>(base.nodes) * 100.0;
    best = std::max(best, expansion);
    std::printf("%10.2f %12.0f %12.0f %12.0f %10.2f %9.1f%%\n", f, c_ebuff, c_baat,
                saving, servers, expansion);
    csv.write_row({util::CsvWriter::cell(f), util::CsvWriter::cell(c_ebuff),
                   util::CsvWriter::cell(c_baat), util::CsvWriter::cell(saving),
                   util::CsvWriter::cell(servers), util::CsvWriter::cell(expansion)});
  }

  std::printf("\nmeasured: best expansion %.1f%% of the fleet (paper: up to 15%%)\n",
              best);
  bench::print_footer();
  return 0;
}
