// Fig 12 — system runtime profiling of the prototype under different solar
// generation scenarios. Paper: daily budgets 8/6/3 kWh for Sunny/Cloudy/
// Rainy; battery usage varies strongly across nodes; on sunny days batteries
// yield less Ah throughput, recharge more often (higher CF) and stay at high
// SoC (healthy PC); cloudy and rainy days show high Ah throughput, low CF
// and low PC.

#include <vector>

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "telemetry/metrics.hpp"

int main() {
  using namespace baat;
  bench::print_header(
      "Fig 12 — one-day runtime profile per weather class (e-Buff duty)",
      "sunny: low NAT / high CF / high-SoC PC; rainy: the opposite");

  const sim::ScenarioConfig cfg = sim::prototype_scenario();
  auto csv = bench::open_csv("fig12_runtime_profile",
                             {"weather", "hour", "nat", "cf", "pc_health", "soc"});

  for (solar::DayType type :
       {solar::DayType::Sunny, solar::DayType::Cloudy, solar::DayType::Rainy}) {
    sim::Cluster cluster{cfg};

    // Hourly intra-day samples of node 0's daily metric log (Fig 12 e–k).
    std::vector<std::array<double, 4>> hourly(24, {0, 0, 0, 0});
    cluster.set_tick_observer([&](const sim::TickObservation& obs) {
      const auto h = static_cast<std::size_t>(obs.time_of_day.value() / 3600.0);
      if (h >= 24 || static_cast<long>(obs.time_of_day.value()) % 3600 != 0) return;
      const telemetry::AgingMetrics m =
          telemetry::compute_metrics((*obs.day_tables)[0], cfg.metrics);
      hourly[h] = {m.nat, m.cf, m.pc_health, (*obs.batteries)[0].soc()};
    });

    const sim::DayResult r = cluster.run_day(type);

    std::printf("%s day — %.1f kWh solar (paper budget %.0f kWh)\n",
                std::string(solar::day_type_name(type)).c_str(),
                r.solar_energy.value() / 1000.0,
                solar::weather_params(type).daily_energy_kwh);

    std::printf("  per-node Ah discharged (usage variation, Fig 12a): ");
    for (const auto& n : r.nodes) std::printf("%6.1f", n.ah_discharged.value());
    std::printf("\n  %5s %10s %8s %10s %7s\n", "hour", "NAT", "CF", "PC-health", "SoC");
    for (int h = 9; h <= 18; h += 3) {
      const auto& s = hourly[static_cast<std::size_t>(h)];
      std::printf("  %5d %10.5f %8.2f %10.2f %7.2f\n", h, s[0], s[1], s[2], s[3]);
      csv.write_row({std::string(solar::day_type_name(type)),
                     util::CsvWriter::cell(static_cast<double>(h)),
                     util::CsvWriter::cell(s[0]), util::CsvWriter::cell(s[1]),
                     util::CsvWriter::cell(s[2]), util::CsvWriter::cell(s[3])});
    }
    const auto& w = r.nodes[r.worst_node()].metrics_day;
    std::printf("  day-end worst node: NAT %.5f  CF %.2f  PC-health %.2f  DDT %.2f\n\n",
                w.nat, w.cf, w.pc_health, w.ddt);
  }

  bench::print_footer();
  return 0;
}
