// Fig 3 — measured battery voltage drop due to aging over 6 months.
// Paper: terminal voltage of a fully charged unit drops ~9% over six months
// of cyclic use, and the drop rate accelerates as the unit ages
// (~0.1 V/month early, ~0.3 V/month late).

#include "bench_util.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace baat;
  bench::print_header(
      "Fig 3 — full-charge terminal voltage over 6 months (worst node)",
      "~9% drop over 6 months; drop rate accelerates with age");

  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.policy = core::PolicyKind::EBuff;  // the aggressive-usage condition
  sim::Cluster cluster{cfg};

  sim::MultiDayOptions opts;
  opts.days = 180;
  opts.weather = sim::mixed_weather(opts.days, 3, 2, 1);  // the prototype's temperate mix
  opts.probe_every_days = 30;
  opts.keep_days = false;
  const sim::MultiDayResult run = sim::run_multi_day(cluster, opts);

  auto csv = bench::open_csv("fig03_voltage_aging",
                             {"month", "voltage_v", "drop_pct", "v_per_month"});

  const battery::ProbeResult fresh = battery::run_probe(
      battery::Battery{cfg.bank.chemistry, cfg.bank.aging, cfg.bank.thermal});
  std::printf("%6s %12s %10s %12s\n", "month", "Vfull(V)", "drop(%)", "dV/month");
  std::printf("%6d %12.3f %10.2f %12s\n", 0, fresh.full_voltage.value(), 0.0, "-");
  double prev_v = fresh.full_voltage.value();
  double first_rate = 0.0;
  double last_rate = 0.0;
  for (const sim::MonthlyProbe& p : run.monthly) {
    const double drop = (1.0 - p.full_voltage / fresh.full_voltage.value()) * 100.0;
    const double rate = prev_v - p.full_voltage;
    if (p.month == 1) first_rate = rate;
    last_rate = rate;
    std::printf("%6d %12.3f %10.2f %12.3f\n", p.month, p.full_voltage, drop, rate);
    csv.write_row({util::CsvWriter::cell(static_cast<double>(p.month)),
                   util::CsvWriter::cell(p.full_voltage), util::CsvWriter::cell(drop),
                   util::CsvWriter::cell(rate)});
    prev_v = p.full_voltage;
  }

  const double total_drop =
      (1.0 - run.monthly.back().full_voltage / fresh.full_voltage.value()) * 100.0;
  std::printf("\nmeasured: %.1f%% total drop (paper ~9%%); drop rate month 1 = "
              "%.3f V, month 6 = %.3f V (%s)\n",
              total_drop, first_rate, last_rate,
              last_rate > first_rate ? "accelerating, as in the paper"
                                     : "NOT accelerating");
  bench::print_footer();
  return 0;
}
