// Fig 5 — measured round-trip energy efficiency degradation over 6 months.
// Paper: round-trip efficiency decreases ~8% after six months when the
// battery is used as a green energy buffer.

#include "bench_util.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace baat;
  bench::print_header("Fig 5 — round-trip efficiency over 6 months (worst node)",
                      "~8% round-trip efficiency drop after six months");

  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.policy = core::PolicyKind::EBuff;
  sim::Cluster cluster{cfg};

  sim::MultiDayOptions opts;
  opts.days = 180;
  opts.weather = sim::mixed_weather(opts.days, 3, 2, 1);
  opts.probe_every_days = 30;
  opts.keep_days = false;
  const sim::MultiDayResult run = sim::run_multi_day(cluster, opts);

  const battery::ProbeResult fresh = battery::run_probe(
      battery::Battery{cfg.bank.chemistry, cfg.bank.aging, cfg.bank.thermal});

  auto csv = bench::open_csv("fig05_efficiency_aging",
                             {"month", "round_trip_eff", "drop_pct"});

  std::printf("%6s %18s %10s\n", "month", "round-trip eff", "drop(%)");
  std::printf("%6d %17.1f%% %10.2f\n", 0, fresh.round_trip_efficiency * 100.0, 0.0);
  double last_drop = 0.0;
  for (const sim::MonthlyProbe& p : run.monthly) {
    last_drop =
        (1.0 - p.round_trip_efficiency / fresh.round_trip_efficiency) * 100.0;
    std::printf("%6d %17.1f%% %10.2f\n", p.month, p.round_trip_efficiency * 100.0,
                last_drop);
    csv.write_row({util::CsvWriter::cell(static_cast<double>(p.month)),
                   util::CsvWriter::cell(p.round_trip_efficiency),
                   util::CsvWriter::cell(last_drop)});
  }

  std::printf("\nmeasured: %.1f%% relative efficiency drop at month 6 (paper ~8%%)\n",
              last_drop);
  bench::print_footer();
  return 0;
}
