// Extension — replacement-schedule economics. Turns the per-policy SoH
// trajectories into concrete maintenance plans over a 10-year datacenter
// life: how many units, how many truck rolls, what annualized cost. This
// grounds the paper's "hiding aging variation avoids irregular replacement"
// claim (§IV-B) in an actual schedule rather than a depreciation average.

#include "bench_util.hpp"
#include "core/maintenance.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace baat;
  bench::print_header(
      "Extension — fleet replacement plans over a 10-year horizon",
      "BAAT's synchronized wear batches service visits; e-Buff scatters them");

  auto csv = bench::open_csv("extension_maintenance",
                             {"policy", "replacements", "visits", "visits_saved",
                              "annual_cost_usd"});

  std::printf("%-8s %14s %8s %14s %14s\n", "policy", "replacements", "visits",
              "visits saved", "annual $");
  for (core::PolicyKind p : {core::PolicyKind::EBuff, core::PolicyKind::Baat}) {
    sim::ScenarioConfig cfg = sim::prototype_scenario();
    cfg.policy = p;
    sim::Cluster cluster{cfg};
    sim::MultiDayOptions opts;
    opts.days = 45;
    opts.sunshine_fraction = 0.4;
    opts.probe_every_days = 0;
    opts.keep_days = false;
    sim::run_multi_day(cluster, opts);

    // Project each node's end-of-life from its observed fade.
    std::vector<core::NodeWear> fleet;
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      const double health = cluster.batteries()[i].health();
      fleet.push_back(core::NodeWear{
          i, core::extrapolate_lifetime(1.0, health, 45.0).days});
    }

    core::MaintenancePlanParams params;
    const core::MaintenancePlan plan =
        core::plan_replacements(fleet, params, core::CostParams{});
    std::printf("%-8s %14.0f %8zu %14zu %14.0f\n",
                std::string(core::policy_kind_name(p)).c_str(),
                plan.total_replacements, plan.visits.size(),
                core::visits_saved(plan),
                plan.annualized(params.horizon_days).value());
    csv.write_row({std::string(core::policy_kind_name(p)),
                   util::CsvWriter::cell(plan.total_replacements),
                   util::CsvWriter::cell(static_cast<double>(plan.visits.size())),
                   util::CsvWriter::cell(static_cast<double>(core::visits_saved(plan))),
                   util::CsvWriter::cell(plan.annualized(params.horizon_days).value())});
  }
  bench::print_footer();
  return 0;
}
