// Ablation — the Eq 6 weighting factors. The paper tunes a, b, c per
// Table 3's demand classes ("our extensive training and experiments shows
// that these weighting factors are fairly effective"). This ablation
// compares Table 3 placement weights against two degenerate choices:
// uniform weights and NAT-only ranking.

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace {

struct ArmResult {
  double min_health = 1.0;
  double spread = 0.0;
  double lifetime_days = 0.0;
};

}  // namespace

int main() {
  using namespace baat;
  bench::print_header(
      "Ablation — Eq 6 placement weights: Table 3 vs uniform vs NAT-only",
      "demand-class-aware weights should balance fleet health at least as well");

  struct Mode {
    const char* name;
    std::optional<core::AgingWeights> override;
  };
  const Mode modes[] = {
      {"table3", std::nullopt},
      {"uniform", core::AgingWeights{1.0 / 3, 1.0 / 3, 1.0 / 3}},
      {"nat-only", core::AgingWeights{0.0, 0.0, 1.0}},
  };

  // The three weighting schemes run concurrently on the sweep engine.
  const std::vector<ArmResult> arms = sim::sweep_map(3, [&](std::size_t i) {
    sim::ScenarioConfig cfg = sim::prototype_scenario();
    cfg.policy = core::PolicyKind::Baat;
    cfg.policy_params.placement_weights_override = modes[i].override;
    sim::Cluster cluster{cfg};
    sim::MultiDayOptions opts;
    opts.days = 45;
    opts.sunshine_fraction = 0.4;
    opts.probe_every_days = 0;
    opts.keep_days = false;
    const sim::MultiDayResult run = sim::run_multi_day(cluster, opts);

    double lo = 1.0;
    double hi = 0.0;
    for (const auto& b : cluster.batteries()) {
      lo = std::min(lo, b.health());
      hi = std::max(hi, b.health());
    }
    return ArmResult{run.min_health_end, hi - lo,
                     core::extrapolate_lifetime(1.0, run.min_health_end, 45.0).days};
  });

  auto csv = bench::open_csv("ablation_weights",
                             {"weights", "min_health", "health_spread",
                              "lifetime_days"});

  std::printf("%-10s %12s %14s %14s\n", "weights", "min health", "health spread",
              "lifetime(worst)");
  for (std::size_t i = 0; i < 3; ++i) {
    const ArmResult& r = arms[i];
    std::printf("%-10s %12.4f %14.4f %13.0fd\n", modes[i].name, r.min_health,
                r.spread, r.lifetime_days);
    csv.write_row({modes[i].name, util::CsvWriter::cell(r.min_health),
                   util::CsvWriter::cell(r.spread),
                   util::CsvWriter::cell(r.lifetime_days)});
  }
  bench::print_footer();
  return 0;
}
