// Fig 22 — productivity benefit of planned aging versus the expected battery
// service life (installation to datacenter end-of-life). Paper: up to ~33%
// more productivity than e-Buff-style management; the benefit falls when the
// battery is installed too close to the datacenter's end-of-life (the >90%
// DoD bound caps it) and also when the service window is so long that there
// is little unused battery life to shift.

#include "bench_util.hpp"
#include "core/planned.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace baat;
  bench::print_header(
      "Fig 22 — productivity gain of planned aging vs expected service life",
      "up to +33% vs e-Buff-style management; falls at both extremes");

  sim::ScenarioConfig base = sim::prototype_scenario();
  base.replicas = 3;  // saturated batch queue: throughput reflects management
  base.daily_jobs = sim::default_daily_jobs(base.replicas);
  constexpr std::size_t kDays = 7;
  const auto weather = sim::mixed_weather(kDays, 0, 3, 4);
  constexpr double kCyclesPerDay = 1.0;  // observed cadence in the usage log

  auto run_week = [&](const sim::ScenarioConfig& cfg) {
    // Average two seeds per point to damp trace noise.
    double sum = 0.0;
    for (std::uint64_t seed : {std::uint64_t{42}, std::uint64_t{1042}, std::uint64_t{77}}) {
      sim::ScenarioConfig seeded = cfg;
      seeded.seed = seed;
      sim::Cluster cluster{seeded};
      sim::seed_aged_fleet(cluster, sim::six_month_aged_state());
      sim::MultiDayOptions opts;
      opts.days = kDays;
      opts.weather = weather;
      opts.probe_every_days = 0;
      opts.keep_days = false;
      sum += sim::run_multi_day(cluster, opts).total_throughput;
    }
    return sum / 3.0;
  };

  sim::ScenarioConfig conservative = base;
  conservative.policy = core::PolicyKind::Baat;
  const double baseline = run_week(conservative);

  auto csv = bench::open_csv("fig22_planned_aging",
                             {"service_days", "dod_goal_pct", "work_mcs",
                              "gain_vs_conservative_pct"});

  std::printf("conservative BAAT baseline: %.2f Mcs over the week\n\n", baseline / 1e6);
  std::printf("%14s %12s %12s %10s\n", "service days", "DoD goal", "work(Mcs)",
              "gain");
  double best = 0.0;
  for (double service_days : {700.0, 1100.0, 1400.0, 1700.0, 2100.0, 2800.0, 4200.0}) {
    sim::ScenarioConfig cfg = base;
    cfg.policy = core::PolicyKind::BaatPlanned;
    cfg.policy_params.planned.cycles_plan =
        core::cycles_remaining(service_days, kCyclesPerDay);
    const core::DodGoal goal = core::planned_dod(
        cfg.policy_params.planned.total_throughput, util::ampere_hours(0.0),
        cfg.policy_params.planned.cycles_plan, cfg.policy_params.planned.nameplate);
    const double work = run_week(cfg);
    const double gain = (work / baseline - 1.0) * 100.0;
    best = std::max(best, gain);
    std::printf("%14.0f %11.0f%% %12.2f %+9.1f%%\n", service_days, goal.dod * 100.0,
                work / 1e6, gain);
    csv.write_row({util::CsvWriter::cell(service_days),
                   util::CsvWriter::cell(goal.dod * 100.0),
                   util::CsvWriter::cell(work / 1e6), util::CsvWriter::cell(gain)});
  }

  std::printf("\nmeasured: best planned-aging productivity gain %+.1f%% over "
              "conservative BAAT (paper: up to +33%% vs e-Buff-style management); "
              "short service windows saturate at the 90%% DoD bound, long windows "
              "converge to conservative operation\n",
              best);
  bench::print_footer();
  return 0;
}
