// Fault ablation — a Fig 13-style matched comparison of what each fault
// class does to battery aging and delivered work. Every cell runs the same
// six-day mixed-weather campaign under BAAT; only the injected fault plan
// differs, so any drift in the aging columns is attributable to the fault
// (and to how well the degraded-mode guard contains it). The grid runs on
// the parallel sweep engine and is byte-identical at any BAAT_JOBS count.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/weighted_aging.hpp"
#include "fault/fault.hpp"
#include "sim/experiment.hpp"
#include "sim/multiday.hpp"
#include "sim/sweep.hpp"

namespace {

struct AblationCell {
  double throughput = 0.0;
  double worst_ah = 0.0;
  double min_health = 1.0;
  double weighted = 0.0;      // Eq 6, equal weights, worst node
  double fallbacks = 0.0;     // degraded-mode decisions the guard took
  double eol_day = 0.0;       // projected end-of-life; only valid when has_eol
  bool has_eol = false;       // the probe fit observed a fade to project from
};

struct FaultClass {
  const char* name;
  const char* spec;  // "" = clean baseline
};

}  // namespace

int main() {
  using namespace baat;
  bench::print_header(
      "Fault ablation — six matched days under BAAT, one fault class per row",
      "sensor faults should cost work, not correctness; supply/cell faults "
      "shift aging where the physics says they must");

  const FaultClass classes[] = {
      {"clean", ""},
      {"sensor_noise", "sensor_noise:soc:0.05"},
      {"sensor_stuck", "sensor_stuck:p=0.01:hold=20"},
      {"pv_dropout", "pv_dropout:day=2:hours=4"},
      {"pv_derate", "pv_derate:factor=0.7"},
      {"cell_weak", "cell_weak:bank=1:capacity=0.8"},
      {"meter_glitch", "meter_glitch:p=0.05"},
      {"combined",
       "sensor_noise:soc:0.05,sensor_stuck:p=0.01:hold=20,"
       "pv_derate:factor=0.7,meter_glitch:p=0.05"},
  };
  constexpr std::size_t kDays = 6;
  const core::AgingWeights equal{1.0 / 3, 1.0 / 3, 1.0 / 3};
  const sim::ScenarioConfig base = sim::prototype_scenario();

  auto csv = bench::open_csv("fault_ablation",
                             {"fault_class", "throughput", "worst_ah", "min_health",
                              "weighted_aging", "policy_fallbacks", "eol_day"});

  const std::size_t n = std::size(classes);
  const std::vector<AblationCell> cells = sim::sweep_map(n, [&](std::size_t i) {
    sim::ScenarioConfig cfg = base;
    cfg.nodes = 4;
    cfg.policy = core::PolicyKind::Baat;
    if (classes[i].spec[0] != '\0') {
      cfg.faults = fault::parse_fault_plan(classes[i].spec);
      cfg.guard.enabled = true;
    }
    sim::Cluster cluster{cfg};
    sim::MultiDayOptions opt;
    opt.days = kDays;
    opt.weather = sim::mixed_weather(kDays, 2, 3, 1);
    opt.probe_every_days = 3;
    const sim::MultiDayResult r = sim::run_multi_day(cluster, opt);

    AblationCell cell;
    cell.throughput = r.total_throughput;
    cell.min_health = r.min_health_end;
    std::size_t worst = 0;
    for (std::size_t b = 1; b < cluster.node_count(); ++b) {
      if (cluster.batteries()[b].counters().ah_discharged >
          cluster.batteries()[worst].counters().ah_discharged) {
        worst = b;
      }
    }
    cell.worst_ah = cluster.batteries()[worst].counters().ah_discharged.value();
    cell.weighted = core::weighted_aging(cluster.life_metrics(worst), equal);
    cell.fallbacks = static_cast<double>(cluster.guard().fallback_count());
    // A fleet that never fades has no projection — "day 0" read as if the
    // battery died on arrival. Carry the absence through to the table/CSV.
    cell.has_eol = r.projected_eol_day.has_value();
    cell.eol_day = r.projected_eol_day.value_or(0.0);
    return cell;
  });

  std::printf("  %-13s %10s %9s %9s %9s %10s %8s\n", "fault", "work(Mcs)",
              "worstAh", "minHealth", "weighted", "fallbacks", "EOLday");
  const double base_work = cells[0].throughput;
  for (std::size_t i = 0; i < n; ++i) {
    const AblationCell& c = cells[i];
    char eol_text[32];
    if (c.has_eol) {
      std::snprintf(eol_text, sizeof eol_text, "%.0f", c.eol_day);
    } else {
      std::snprintf(eol_text, sizeof eol_text, "-");
    }
    std::printf("  %-13s %10.2f %9.1f %9.4f %9.3f %10.0f %8s\n", classes[i].name,
                c.throughput / 1e6, c.worst_ah, c.min_health, c.weighted,
                c.fallbacks, eol_text);
    csv.write_row({classes[i].name, util::CsvWriter::cell(c.throughput),
                   util::CsvWriter::cell(c.worst_ah),
                   util::CsvWriter::cell(c.min_health),
                   util::CsvWriter::cell(c.weighted),
                   util::CsvWriter::cell(c.fallbacks),
                   c.has_eol ? util::CsvWriter::cell(c.eol_day) : std::string()});
  }
  std::printf("\nmeasured: combined-fault work retained: %.1f%% of clean\n",
              100.0 * cells[n - 1].throughput / base_work);
  bench::print_footer();
  return 0;
}
