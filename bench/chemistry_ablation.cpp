// Chemistry ablation (DESIGN.md §5i) — rerun the paper's headline policy
// evaluations (Figs 13–17) under each battery backend the fleet kernel can
// host: the paper's lead-acid model, the Li-ion NMC and LFP presets, and
// the cheap energy-bucket tier. Two questions drive the harness:
//
//   * Do the paper's policy-ordering claims survive a chemistry swap?
//     (BAAT < e-Buff on worst-node Ah and weighted aging — Fig 13; BAAT
//     extends lifetime at every sunshine fraction — Fig 14; the gain grows
//     as servers outnumber battery — Figs 15/17; cheaper depreciation —
//     Fig 16.)
//   * What does each chemistry's aging actually consist of? (The ledger's
//     per-mechanism attribution of the worst node, on that chemistry's own
//     mechanism axis.)
//
// Every grid runs on the parallel sweep engine; each job re-derives its
// solar days from the same named RNG stream, so all policies see identical
// supply and the output is identical at any BAAT_JOBS worker count.

#include <array>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "battery/bank.hpp"
#include "battery/chemistry_model.hpp"
#include "bench_util.hpp"
#include "core/weighted_aging.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace baat;

constexpr battery::Chemistry kChems[] = {
    battery::Chemistry::LeadAcid, battery::Chemistry::LiNmc,
    battery::Chemistry::LiLfp, battery::Chemistry::Bucket};

/// The scenario a `--chemistry <kind>` CLI run would build: the preset is
/// applied before anything reads the bank, and the planned-aging metrics
/// are rebased on the preset's nameplate and rated cycles (mirrors
/// scenario_from_cli).
sim::ScenarioConfig scenario_for(battery::Chemistry kind) {
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  if (kind != battery::Chemistry::LeadAcid) {
    battery::apply_chemistry_preset(cfg.bank, kind);
    cfg.metrics.nameplate = cfg.bank.chemistry.capacity_c20;
    cfg.metrics.lifetime_throughput = util::ampere_hours(
        cfg.bank.chemistry.capacity_c20.value() * cfg.bank.cycle_curve.cycles_at_full);
    cfg.policy_params.planned.total_throughput = cfg.metrics.lifetime_throughput;
    cfg.policy_params.planned.nameplate = cfg.metrics.nameplate;
  }
  return cfg;
}

struct Fig13Cell {
  double worst_ah = 0.0;
  double weighted = 0.0;
  std::array<double, 5> fade{};  ///< worst node, weighted mechanism slots
  double fade_total = 0.0;
};

/// The "old battery" condition per chemistry. Lead-acid keeps the paper's
/// six-month aged state; the Li and bucket chemistries get the same ~12%
/// capacity fade split evenly between their two mechanisms (calendar in the
/// corrosion slot, cycle/throughput fade in the shedding slot), so the
/// matched-day comparison starts from an equivalent health handicap.
battery::AgingState aged_state_for(battery::Chemistry kind) {
  if (kind == battery::Chemistry::LeadAcid) return sim::six_month_aged_state();
  const battery::AgingParams p = battery::chemistry_model(kind).aging;
  battery::AgingState s;
  s.corrosion = 0.06 / p.capacity_w_corrosion;
  s.shedding = 0.06;
  return s;
}

}  // namespace

int main() {
  bench::print_header(
      "Chemistry ablation — Figs 13-17 headline claims per battery backend",
      "policy ordering (BAAT < e-Buff aging, BAAT lifetime gain) should "
      "survive the chemistry swap; attribution shifts to each chemistry's "
      "own mechanism axis");

  const core::PolicyKind policies[] = {core::PolicyKind::EBuff, core::PolicyKind::BaatS,
                                       core::PolicyKind::BaatH, core::PolicyKind::Baat};
  const solar::DayType weathers[] = {solar::DayType::Sunny, solar::DayType::Cloudy};
  const core::AgingWeights equal{1.0 / 3, 1.0 / 3, 1.0 / 3};

  // ---- Fig 13 per chemistry: matched-day policy comparison ----------------
  // Young fleet, 3 warmup days + 1 measured day, sunny and cloudy; the
  // ledger attribution is read off the worst node after the measured day.
  constexpr int kWarmupDays = 3;
  constexpr std::size_t kPolicies = 4;
  constexpr std::size_t kChemCount = 4;
  const bool fleets[] = {false, true};  // young, old
  const std::size_t n13 = kChemCount * 2 * 2 * kPolicies;
  const std::vector<Fig13Cell> cells13 = sim::sweep_map(n13, [&](std::size_t i) {
    const core::PolicyKind p = policies[i % kPolicies];
    const solar::DayType type = weathers[(i / kPolicies) % 2];
    const bool old_fleet = (i / (kPolicies * 2)) % 2 != 0;
    const battery::Chemistry kind = kChems[i / (kPolicies * 2 * 2)];

    sim::ScenarioConfig cfg = scenario_for(kind);
    std::vector<solar::SolarDay> days;
    util::Rng day_rng = util::Rng::stream(cfg.seed, "chem-ablation-days");
    for (int d = 0; d <= kWarmupDays; ++d) {
      days.emplace_back(cfg.plant, type, day_rng.fork("day"));
    }

    cfg.policy = p;
    sim::Cluster cluster{cfg};
    if (old_fleet) sim::seed_aged_fleet(cluster, aged_state_for(kind));
    for (int d = 0; d < kWarmupDays; ++d) cluster.run_day(days[d]);
    const sim::DayResult r = cluster.run_day(days.back());
    const std::size_t worst = r.worst_node();
    const auto& m = r.nodes[worst].metrics_day;

    Fig13Cell out;
    out.worst_ah = r.nodes[worst].ah_discharged.value();
    out.weighted = core::weighted_aging(m, equal);
    const battery::CellLedgerEntry total = cluster.node_ledger_total(worst);
    out.fade = {total.fade.corrosion, total.fade.shedding, total.fade.sulphation,
                total.fade.stratification, total.fade.water_loss};
    out.fade_total = total.fade.total();
    return out;
  });

  auto csv13 = bench::open_csv(
      "chemistry_ablation_fig13",
      {"chemistry", "fleet", "weather", "policy", "worst_ah", "weighted_aging",
       "fade_total", "mech0", "mech0_fade", "mech1", "mech1_fade"});

  std::map<std::string, double> ah;        // (chem|fleet|weather|policy) → worst Ah
  std::map<std::string, double> weighted;  // same → Eq 6 score
  std::size_t idx = 0;
  for (battery::Chemistry kind : kChems) {
    const std::string chem{battery::chemistry_name(kind)};
    const battery::MechanismAxis axis = battery::mechanism_axis(kind);
    for (bool old_fleet : fleets) {
      for (solar::DayType type : weathers) {
        std::printf("%s, %s fleet, %s day:\n", chem.c_str(),
                    old_fleet ? "old" : "young",
                    std::string(solar::day_type_name(type)).c_str());
        std::printf("  %-8s %9s %10s %11s  attribution (worst node)\n", "policy",
                    "worstAh", "weighted", "fade_total");
        for (core::PolicyKind p : policies) {
          const Fig13Cell& c = cells13[idx++];
          const std::string key = chem + "|" + (old_fleet ? "old" : "young") + "|" +
                                  std::string(solar::day_type_name(type)) + "|" +
                                  std::string(core::policy_kind_name(p));
          ah[key] = c.worst_ah;
          weighted[key] = c.weighted;
          std::string attrib;
          for (std::size_t s = 0; s < axis.count; ++s) {
            if (c.fade[s] <= 0.0) continue;
            char buf[64];
            std::snprintf(buf, sizeof buf, "%s%s %.0f%%", attrib.empty() ? "" : ", ",
                          axis.names[s], 100.0 * c.fade[s] / c.fade_total);
            attrib += buf;
          }
          std::printf("  %-8s %9.1f %10.3f %11.3e  %s\n",
                      std::string(core::policy_kind_name(p)).c_str(), c.worst_ah,
                      c.weighted, c.fade_total, attrib.c_str());
          csv13.write_row({chem, old_fleet ? "old" : "young",
                           std::string(solar::day_type_name(type)),
                           std::string(core::policy_kind_name(p)),
                           util::CsvWriter::cell(c.worst_ah),
                           util::CsvWriter::cell(c.weighted),
                           util::CsvWriter::cell(c.fade_total), axis.names[0],
                           util::CsvWriter::cell(c.fade[0]), axis.names[1],
                           util::CsvWriter::cell(c.fade[1])});
        }
        std::printf("\n");
      }
    }
  }

  // ---- Figs 14-17 per chemistry: lifetime, ratio and depreciation ---------
  // Lifetime at two sunshine fractions (Fig 14's axis) plus a server-heavy
  // 8 W/Ah point (Figs 15/17's axis), e-Buff vs BAAT; Fig 16's daily
  // depreciation is the inverse lifetime ratio for a fixed battery price.
  const double fractions[] = {0.35, 0.65};
  constexpr double kExpandedRatio = 8.0;  // W/Ah, vs the prototype's ~4.3
  const core::PolicyKind life_policies[] = {core::PolicyKind::EBuff,
                                            core::PolicyKind::Baat};
  constexpr std::size_t kSimDays = 45;
  // Per chemistry: 2 fractions x 2 policies + expanded point x 2 policies.
  const std::size_t per_chem = 2 * 2 + 2;
  const std::vector<double> lifetimes =
      sim::sweep_map(kChemCount * per_chem, [&](std::size_t i) {
        const battery::Chemistry kind = kChems[i / per_chem];
        const std::size_t j = i % per_chem;
        sim::ScenarioConfig cfg = scenario_for(kind);
        cfg.seed = 42;
        if (j < 4) {
          return sim::estimate_lifetime(cfg, life_policies[j % 2], fractions[j / 2],
                                        kSimDays)
              .lifetime_days;
        }
        cfg = sim::with_server_battery_ratio(cfg, kExpandedRatio);
        return sim::estimate_lifetime(cfg, life_policies[j % 2], 0.5, kSimDays)
            .lifetime_days;
      });

  auto csv_life = bench::open_csv(
      "chemistry_ablation_lifetime",
      {"chemistry", "sunshine_fraction", "watts_per_ah", "ebuff_days",
       "baat_days", "baat_gain_pct"});

  std::printf("lifetime (days), e-Buff vs BAAT:\n");
  std::printf("  %-10s %9s %7s %10s %10s %10s\n", "chemistry", "sunshine", "W/Ah",
              "e-Buff", "BAAT", "BAAT gain");
  for (std::size_t ci = 0; ci < kChemCount; ++ci) {
    const std::string chem{battery::chemistry_name(kChems[ci])};
    for (std::size_t j = 0; j < per_chem; j += 2) {
      const double ebuff = lifetimes[ci * per_chem + j];
      const double baat = lifetimes[ci * per_chem + j + 1];
      const double sunshine = j < 4 ? fractions[j / 2] : 0.5;
      const double ratio = j < 4 ? 0.0 : kExpandedRatio;  // 0 = prototype
      const double gain = (baat / ebuff - 1.0) * 100.0;
      std::printf("  %-10s %9.2f %7s %9.0fd %9.0fd %+9.0f%%\n", chem.c_str(),
                  sunshine, j < 4 ? "proto" : "8.0", ebuff, baat, gain);
      csv_life.write_row({chem, util::CsvWriter::cell(sunshine),
                          util::CsvWriter::cell(ratio), util::CsvWriter::cell(ebuff),
                          util::CsvWriter::cell(baat), util::CsvWriter::cell(gain)});
    }
  }

  // ---- headline: does the paper's ordering survive the swap? --------------
  // Fig 13's headline conditions: the Ah gap averages over all four
  // {fleet, weather} cells and peaks at cloudy + old; the weighted-aging cut
  // is quoted on the worst case (old fleet, cloudy day).
  // The interesting question is not whether the paper's absolute 1.3x/2.1x
  // numbers reappear (they are a property of the lead-acid backend and the
  // current simulator calibration) but whether swapping the chemistry MOVES
  // the policy comparison: each chemistry's e-Buff/BAAT ratios are printed
  // next to the lead-acid backend's own on identical solar traces.
  std::printf("\nheadline per chemistry:\n");
  std::map<std::string, double> avg_ratio;
  for (battery::Chemistry kind : kChems) {
    const std::string chem{battery::chemistry_name(kind)};
    double ah_ratio = 0.0;
    for (const char* fleet : {"young", "old"}) {
      for (const char* w : {"Sunny", "Cloudy"}) {
        const std::string cond = chem + "|" + fleet + "|" + w;
        ah_ratio += ah[cond + "|e-Buff"] / ah[cond + "|BAAT"] / 4.0;
      }
    }
    avg_ratio[chem] = ah_ratio;
    const double worst_ratio =
        ah[chem + "|old|Cloudy|e-Buff"] / ah[chem + "|old|Cloudy|BAAT"];
    const double aging_cut = (1.0 - weighted[chem + "|old|Cloudy|BAAT"] /
                                        weighted[chem + "|old|Cloudy|e-Buff"]) *
                             100.0;
    std::printf("  %-10s e-Buff/BAAT Ah %.2fx avg, %.2fx cloudy+old; BAAT "
                "weighted-aging cut %+.0f%% (cloudy+old)\n",
                chem.c_str(), ah_ratio, worst_ratio, aging_cut);
  }
  const double lead = avg_ratio["lead_acid"];
  bool stable = true;
  for (battery::Chemistry kind : kChems) {
    const std::string chem{battery::chemistry_name(kind)};
    if (std::abs(avg_ratio[chem] - lead) > 0.15) stable = false;
  }
  std::printf("chemistry swap vs lead-acid backend: e-Buff/BAAT Ah ratio %s\n",
              stable ? "stable (within 0.15x of lead-acid on matched traces)"
                     : "SHIFTS by more than 0.15x — see table");
  bench::print_footer();
  return 0;
}
