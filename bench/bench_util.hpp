#pragma once

// Shared plumbing for the figure-reproduction benches: consistent headers,
// paper-vs-measured rows, and CSV output under ./bench_results/.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace baat::bench {

inline void print_header(const std::string& fig, const std::string& paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", fig.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("--------------------------------------------------------------\n");
}

inline void print_footer() {
  std::printf("--------------------------------------------------------------\n\n");
}

/// Opens bench_results/<name>.csv with the given header (creates the dir).
inline util::CsvWriter open_csv(const std::string& name,
                                const std::vector<std::string>& header) {
  std::filesystem::create_directories("bench_results");
  return util::CsvWriter{"bench_results/" + name + ".csv", header};
}

}  // namespace baat::bench
