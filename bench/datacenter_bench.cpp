// Perf harness for the sharded datacenter pipeline (DESIGN.md §5h).
//
// Where kernel_bench times the inner tick kernel in isolation, this bench
// times the full day pipeline — router, policy, telemetry, watchdog, fault
// layer, demand scheduling and the shard merge — at datacenter scale, up
// to the 100k-cell / 16-shard flagship config. The unit of work is the
// node-tick (one server-battery node advanced one dt), so ns/node-tick is
// directly comparable across shard counts: a perfect sharding layer adds
// zero ns/node-tick over the single-cluster pipeline.
//
// Rows:
//   dc_ref_6250        1 shard  x 6250 nodes — the unsharded reference the
//                      sharding-tax gate rule divides against
//   dc_100k_16shard   16 shards x 6250 nodes = 100,000 cells, the paper's
//                      green-datacenter scale, with a diurnal demand model
//   dc_8x250_w{1,2,4}  worker-scaling triplet (same work, more threads) —
//                      on a multi-core host these document near-linear
//                      scaling; single-core CI reports them without gating
//
// Each row also reports sim-days/hour and the projected wall-clock for one
// simulated year, which is how the flagship config's "a year of 100k cells
// is an overnight run, not a cluster job" claim is tracked (see
// EXPERIMENTS.md).
//
// Methodology matches kernel_bench: only Datacenter::run_day is timed (one
// segment per simulated day, min-over-days rejects background noise), the
// JSON carries the same calibration scalar, and tools/perf_gate.py compares
// machine-normalized ns/node-tick under the ns_per_cell_tick key plus a
// within-run sharding-tax rule (dc_100k_16shard vs dc_ref_6250).
//
// Usage: datacenter_bench [--quick] [--out <path>]
//   --quick   tiny configs — the ctest smoke mode. Numbers are noisy;
//             only the committed full run is gate-worthy.
//   --out     JSON output path (default: BENCH_datacenter.json in the cwd).

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "sim/datacenter.hpp"
#include "sim/scenario.hpp"
#include "util/logging.hpp"
#include "util/sim_clock.hpp"
#include "workload/demand.hpp"

namespace {

// Allocation counter (see kernel_bench.cpp). The day pipeline legitimately
// allocates — per-day result vectors, trace strings — so the number is
// reported per node-tick for trend-watching rather than gated at zero.
std::size_t g_allocs = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace baat;

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point t0, Clock::time_point t1) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

/// Same dependent multiply-add chain as kernel_bench: the machine-speed
/// scalar the perf gate divides by before comparing hosts. Min over five
/// ~10 ms repetitions — contention can only inflate the chain, so the min
/// is the clean measurement (a single shot poisoned by a scheduler hiccup
/// would skew every normalized comparison against this file's baseline).
double calibration_ns() {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    volatile double seed = 1.0;
    double x = seed;
    const long kIters = 5'000'000;
    const auto t0 = Clock::now();
    for (long i = 0; i < kIters; ++i) {
      x = x * 0.999999999 + 1e-9;
    }
    const auto t1 = Clock::now();
    volatile double sink = x;
    (void)sink;
    best = std::min(best, elapsed_ns(t0, t1));
  }
  return best;
}

struct BenchResult {
  std::string name;
  std::size_t shards = 0;
  std::size_t nodes = 0;  ///< total across shards
  std::size_t workers = 0;
  long days = 0;
  double ns_per_node_tick = 0.0;
  double sim_days_per_hour = 0.0;
  double year_projection_s = 0.0;  ///< projected wall-clock for 365 days
  double allocs_per_node_tick = 0.0;
  double health_sink = 0.0;  ///< min health after the run — result checksum
};

/// Times `days` calls of Datacenter::run_day (alternating weather so the
/// solar and demand paths both stay hot) and reports the per-day minimum —
/// one day is one segment in kernel_bench terms.
BenchResult bench_datacenter(const char* name, std::size_t shards,
                             std::size_t nodes_per_shard, std::size_t workers,
                             long warmup_days, long days, bool with_demand) {
  sim::DatacenterConfig cfg;
  cfg.scenario = sim::prototype_scenario();
  cfg.scenario.nodes = nodes_per_shard;
  cfg.scenario.policy = core::PolicyKind::Baat;
  cfg.scenario.seed = 42;
  cfg.scenario.bank.math = battery::MathMode::Simd;
  cfg.shards = shards;
  cfg.workers = workers;
  if (with_demand) {
    cfg.demand = workload::parse_demand_spec(
        "users=" + std::to_string(shards * nodes_per_shard * 1000) +
        ",requests=150,peak=14,amplitude=0.6,spread=8");
  }
  util::set_sim_time(0.0);
  sim::Datacenter dc{cfg};

  const double ticks_per_day = 86400.0 / cfg.scenario.dt.value();
  const double node_ticks_per_day =
      static_cast<double>(dc.node_count()) * ticks_per_day;
  auto weather_for = [](long day) {
    return day % 3 == 1 ? solar::DayType::Cloudy : solar::DayType::Sunny;
  };

  for (long d = 0; d < warmup_days; ++d) (void)dc.run_day(weather_for(d));

  const std::size_t allocs0 = g_allocs;
  double best_day_ns = std::numeric_limits<double>::infinity();
  double total_ns = 0.0;
  double min_health = 1.0;
  for (long d = 0; d < days; ++d) {
    const auto t0 = Clock::now();
    const sim::DayResult r = dc.run_day(weather_for(warmup_days + d));
    const auto t1 = Clock::now();
    const double day_ns = elapsed_ns(t0, t1);
    best_day_ns = std::min(best_day_ns, day_ns);
    total_ns += day_ns;
    for (const sim::NodeDayStats& n : r.nodes) min_health = std::min(min_health, n.health);
  }
  const std::size_t allocs = g_allocs - allocs0;
  util::set_sim_time(-1.0);

  BenchResult r;
  r.name = name;
  r.shards = shards;
  r.nodes = dc.node_count();
  r.workers = workers;
  r.days = days;
  r.ns_per_node_tick = best_day_ns / node_ticks_per_day;
  r.sim_days_per_hour = 3600.0e9 / best_day_ns;
  r.year_projection_s = 365.0 * best_day_ns / 1e9;
  r.allocs_per_node_tick =
      static_cast<double>(allocs) /
      (node_ticks_per_day * static_cast<double>(days));
  r.health_sink = min_health;
  return r;
}

void write_json(const std::string& path, double calib,
                const std::vector<BenchResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "datacenter_bench: cannot open %s for writing\n",
                 path.c_str());
    std::exit(1);
  }
  char buf[320];
  out << "{\n";
  std::snprintf(buf, sizeof buf, "  \"calibration_ns\": %.0f,\n", calib);
  out << buf;
  out << "  \"benches\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    // ns_per_cell_tick / allocs_per_tick are the key names tools/perf_gate.py
    // compares on; here they carry ns (and allocs) per node-tick.
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"shards\": %zu, \"nodes\": %zu, "
                  "\"workers\": %zu, \"days\": %ld, "
                  "\"ns_per_cell_tick\": %.3f, \"sim_days_per_hour\": %.1f, "
                  "\"year_projection_s\": %.1f, \"allocs_per_tick\": %.4f}%s\n",
                  r.name.c_str(), r.shards, r.nodes, r.workers, r.days,
                  r.ns_per_node_tick, r.sim_days_per_hour, r.year_projection_s,
                  r.allocs_per_node_tick, i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_datacenter.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: datacenter_bench [--quick] [--out <path>]\n");
      return 2;
    }
  }

  // Large fleets under demand brown out nodes by design; the per-node WARN
  // replay would swamp stderr (and perturb the timing) at 100k nodes.
  util::set_log_sink([](util::LogLevel, const std::string&) {});

  const double calib = calibration_ns();
  std::vector<BenchResult> results;

  if (quick) {
    // Smoke scale: same code paths (sharding, demand, worker pool), tiny
    // fleets — finishes in seconds so it can ride in the ctest perf label.
    // Distinct names keep these rows out of the baseline comparison.
    results.push_back(bench_datacenter("dc_smoke_1x48", 1, 48, 1, 1, 2, true));
    results.push_back(bench_datacenter("dc_smoke_4x48", 4, 48, 1, 1, 2, true));
    results.push_back(bench_datacenter("dc_smoke_w2", 4, 12, 2, 0, 2, false));
    results.push_back(bench_datacenter("dc_smoke_w4", 4, 12, 4, 0, 2, false));
  } else {
    // The unsharded reference and the 100k-cell flagship run the same
    // per-shard node count AND the same per-shard demand (users scale with
    // total nodes, split evenly across shards), so the within-run sharding
    // tax is an apples-to-apples ratio of ns/node-tick.
    results.push_back(bench_datacenter("dc_ref_6250", 1, 6250, 1, 1, 3, true));
    results.push_back(bench_datacenter("dc_100k_16shard", 16, 6250, 1, 0, 3, true));
    results.push_back(bench_datacenter("dc_8x250_w1", 8, 250, 1, 1, 4, false));
    results.push_back(bench_datacenter("dc_8x250_w2", 8, 250, 2, 1, 4, false));
    results.push_back(bench_datacenter("dc_8x250_w4", 8, 250, 4, 1, 4, false));
  }

  std::printf("calibration_ns: %.0f%s\n", calib, quick ? "  (quick mode)" : "");
  for (const BenchResult& r : results) {
    std::printf(
        "%-16s shards=%-3zu nodes=%-7zu workers=%zu  ns/node-tick=%8.2f  "
        "sim-days/h=%8.1f  year=%7.0fs  allocs/node-tick=%.4f  (min health %.6f)\n",
        r.name.c_str(), r.shards, r.nodes, r.workers, r.ns_per_node_tick,
        r.sim_days_per_hour, r.year_projection_s, r.allocs_per_node_tick,
        r.health_sink);
  }

  write_json(out_path, calib, results);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
