// Ablation — BAAT's aging-aware charge priority (§VI-B: "the worst battery
// node can obtain more solar charging chances and has higher CF") vs the
// physical proportional split. Measures the design choice DESIGN.md calls
// out: does steering surplus at the most-aged unit actually buy worst-node
// lifetime?

#include "bench_util.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace baat;
  bench::print_header(
      "Ablation — BAAT charge priority: worst-aged-first vs proportional split",
      "priority charging should raise the worst node's CF and lifetime");

  auto csv = bench::open_csv("ablation_charge_priority",
                             {"mode", "worst_cf", "min_health", "lifetime_days"});

  std::printf("%-14s %10s %12s %14s\n", "mode", "worst CF", "min health",
              "lifetime(worst)");
  for (bool priority : {true, false}) {
    sim::ScenarioConfig cfg = sim::prototype_scenario();
    cfg.policy = core::PolicyKind::Baat;
    cfg.policy_params.use_charge_priority = priority;
    sim::Cluster cluster{cfg};
    sim::MultiDayOptions opts;
    opts.days = 45;
    opts.sunshine_fraction = 0.4;
    opts.probe_every_days = 0;
    opts.keep_days = false;
    const sim::MultiDayResult run = sim::run_multi_day(cluster, opts);

    // Worst node by health; report its lifetime CF.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < cluster.node_count(); ++i) {
      if (cluster.batteries()[i].health() < cluster.batteries()[worst].health()) {
        worst = i;
      }
    }
    const double cf = cluster.life_metrics(worst).cf;
    const double life =
        core::extrapolate_lifetime(1.0, run.min_health_end, 45.0).days;
    const char* name = priority ? "worst-first" : "proportional";
    std::printf("%-14s %10.2f %12.4f %13.0fd\n", name, cf, run.min_health_end, life);
    csv.write_row({name, util::CsvWriter::cell(cf),
                   util::CsvWriter::cell(run.min_health_end),
                   util::CsvWriter::cell(life)});
  }
  bench::print_footer();
  return 0;
}
