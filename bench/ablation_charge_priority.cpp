// Ablation — BAAT's aging-aware charge priority (§VI-B: "the worst battery
// node can obtain more solar charging chances and has higher CF") vs the
// physical proportional split. Measures the design choice DESIGN.md calls
// out: does steering surplus at the most-aged unit actually buy worst-node
// lifetime? Both arms run concurrently on the parallel sweep engine.

#include "bench_util.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace {

struct ArmResult {
  double worst_cf = 0.0;
  double min_health = 1.0;
  double lifetime_days = 0.0;
};

}  // namespace

int main() {
  using namespace baat;
  bench::print_header(
      "Ablation — BAAT charge priority: worst-aged-first vs proportional split",
      "priority charging should raise the worst node's CF and lifetime");

  const bool modes[] = {true, false};
  const std::vector<ArmResult> arms = sim::sweep_map(2, [&](std::size_t i) {
    sim::ScenarioConfig cfg = sim::prototype_scenario();
    cfg.policy = core::PolicyKind::Baat;
    cfg.policy_params.use_charge_priority = modes[i];
    sim::Cluster cluster{cfg};
    sim::MultiDayOptions opts;
    opts.days = 45;
    opts.sunshine_fraction = 0.4;
    opts.probe_every_days = 0;
    opts.keep_days = false;
    const sim::MultiDayResult run = sim::run_multi_day(cluster, opts);

    // Worst node by health; report its lifetime CF.
    std::size_t worst = 0;
    for (std::size_t n = 1; n < cluster.node_count(); ++n) {
      if (cluster.batteries()[n].health() < cluster.batteries()[worst].health()) {
        worst = n;
      }
    }
    return ArmResult{cluster.life_metrics(worst).cf, run.min_health_end,
                     core::extrapolate_lifetime(1.0, run.min_health_end, 45.0).days};
  });

  auto csv = bench::open_csv("ablation_charge_priority",
                             {"mode", "worst_cf", "min_health", "lifetime_days"});

  std::printf("%-14s %10s %12s %14s\n", "mode", "worst CF", "min health",
              "lifetime(worst)");
  for (std::size_t i = 0; i < 2; ++i) {
    const char* name = modes[i] ? "worst-first" : "proportional";
    const ArmResult& r = arms[i];
    std::printf("%-14s %10.2f %12.4f %13.0fd\n", name, r.worst_cf, r.min_health,
                r.lifetime_days);
    csv.write_row({name, util::CsvWriter::cell(r.worst_cf),
                   util::CsvWriter::cell(r.min_health),
                   util::CsvWriter::cell(r.lifetime_days)});
  }
  bench::print_footer();
  return 0;
}
