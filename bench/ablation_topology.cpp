// Ablation — distributed per-server batteries vs a centralized shared bank
// (§II-A's architectural choice). Same total Ah, same conversion losses,
// same synthetic duty: a solar day against a fleet demand profile, repeated
// for 30 days. Reports aging, unmet energy, and SPOF exposure (ticks where
// EVERY node browned out at once — only possible with the shared bank or a
// fleet-wide blackout).

#include <numeric>
#include <vector>

#include "bench_util.hpp"
#include "power/centralized.hpp"
#include "power/rack_pool.hpp"
#include "power/router.hpp"
#include "sim/multiday.hpp"
#include "sim/sweep.hpp"
#include "solar/solar_day.hpp"

namespace {

using namespace baat;

struct TopoResult {
  double health = 1.0;
  double unmet_wh = 0.0;
  long spof_ticks = 0;     ///< ticks with the whole fleet unpowered
  long partial_ticks = 0;  ///< ticks with some but not all nodes unpowered
};

constexpr std::size_t kNodes = 6;
/// Heterogeneous per-node demand (W) — real racks are unbalanced, and the
/// imbalance is what distributed batteries turn into *partial* degradation.
constexpr double kDemandW[kNodes] = {70.0, 85.0, 95.0, 105.0, 115.0, 130.0};

TopoResult run_distributed(const std::vector<solar::SolarDay>& days) {
  std::vector<battery::Battery> bats;
  for (std::size_t i = 0; i < kNodes; ++i) {
    bats.emplace_back(battery::LeadAcidParams{}, battery::AgingParams{},
                      battery::ThermalParams{});
  }
  std::vector<std::size_t> order(kNodes);
  std::iota(order.begin(), order.end(), std::size_t{0});
  TopoResult r;
  for (const solar::SolarDay& day : days) {
    for (int m = 0; m < 1440; ++m) {
      const util::Seconds tod{m * 60.0};
      const bool on = tod >= util::hours(8.5) && tod < util::hours(18.5);
      std::vector<util::Watts> demands(kNodes);
      for (std::size_t i = 0; i < kNodes; ++i) {
        demands[i] = util::Watts{on ? kDemandW[i] : 0.0};
      }
      const auto route = power::route_power(day.power(tod), demands, bats, order,
                                            power::RouterParams{}, util::minutes(1.0));
      int down = 0;
      for (const auto& n : route.nodes) {
        r.unmet_wh += n.unmet.value() / 60.0;
        if (on && n.unmet.value() > 1.0) ++down;
      }
      if (down == static_cast<int>(kNodes)) ++r.spof_ticks;
      if (down > 0 && down < static_cast<int>(kNodes)) ++r.partial_ticks;
    }
  }
  double h = 1.0;
  for (const auto& b : bats) h = std::min(h, b.health());
  r.health = h;
  return r;
}

TopoResult run_racked(const std::vector<solar::SolarDay>& days) {
  // Two racks of three nodes, one pooled bank (3 x 35 Ah) per rack — the
  // Facebook Open Rack style integration of Fig 7.
  std::vector<battery::Battery> pools;
  for (int r = 0; r < 2; ++r) {
    pools.emplace_back(battery::LeadAcidParams{}, battery::AgingParams{},
                       battery::ThermalParams{}, 3.0, 1.0 / 3.0);
  }
  const power::RackLayout layout = power::even_racks(kNodes, 2);
  TopoResult r;
  for (const solar::SolarDay& day : days) {
    for (int m = 0; m < 1440; ++m) {
      const util::Seconds tod{m * 60.0};
      const bool on = tod >= util::hours(8.5) && tod < util::hours(18.5);
      std::vector<util::Watts> demands(kNodes);
      for (std::size_t i = 0; i < kNodes; ++i) {
        demands[i] = util::Watts{on ? kDemandW[i] : 0.0};
      }
      const auto route = power::route_power_racked(day.power(tod), demands, layout,
                                                   pools, power::RouterParams{},
                                                   util::minutes(1.0));
      int down = 0;
      for (const auto& n : route.nodes) {
        r.unmet_wh += n.unmet.value() / 60.0;
        if (on && n.unmet.value() > 1.0) ++down;
      }
      if (down == static_cast<int>(kNodes)) ++r.spof_ticks;
      if (down > 0 && down < static_cast<int>(kNodes)) ++r.partial_ticks;
    }
  }
  double h = 1.0;
  for (const auto& p : pools) h = std::min(h, p.health());
  r.health = h;
  return r;
}

TopoResult run_centralized(const std::vector<solar::SolarDay>& days) {
  // One bank with the same total capacity (6 x 35 Ah) and proportionally
  // lower resistance (parallel strings).
  battery::Battery bank{battery::LeadAcidParams{}, battery::AgingParams{},
                        battery::ThermalParams{}, 6.0, 1.0 / 6.0};
  TopoResult r;
  for (const solar::SolarDay& day : days) {
    for (int m = 0; m < 1440; ++m) {
      const util::Seconds tod{m * 60.0};
      const bool on = tod >= util::hours(8.5) && tod < util::hours(18.5);
      std::vector<util::Watts> demands(kNodes);
      for (std::size_t i = 0; i < kNodes; ++i) {
        demands[i] = util::Watts{on ? kDemandW[i] : 0.0};
      }
      const auto route = power::route_power_centralized(
          day.power(tod), demands, bank, power::RouterParams{}, util::minutes(1.0));
      int down = 0;
      for (const auto& n : route.nodes) {
        r.unmet_wh += n.unmet.value() / 60.0;
        if (on && n.unmet.value() > 1.0) ++down;
      }
      if (down == static_cast<int>(kNodes)) ++r.spof_ticks;
      if (down > 0 && down < static_cast<int>(kNodes)) ++r.partial_ticks;
    }
  }
  r.health = bank.health();
  return r;
}

}  // namespace

int main() {
  using namespace baat;
  bench::print_header(
      "Ablation — distributed vs centralized battery topology (30 days)",
      "same total Ah; centralized couples every node to one bank (SPOF)");

  util::Rng rng{4242};
  std::vector<solar::SolarDay> days;
  const auto weather = sim::mixed_weather(30, 2, 3, 2);
  for (solar::DayType t : weather) {
    days.emplace_back(solar::PlantSpec{}, t, rng.fork("day"));
  }

  // The three topologies run concurrently on the sweep engine; the solar
  // days are shared read-only (SolarDay::power is const).
  const std::vector<TopoResult> arms = sim::sweep_map(3, [&](std::size_t i) {
    switch (i) {
      case 0: return run_distributed(days);
      case 1: return run_racked(days);
      default: return run_centralized(days);
    }
  });
  const TopoResult& dist = arms[0];
  const TopoResult& racked = arms[1];
  const TopoResult& cent = arms[2];

  auto csv = bench::open_csv("ablation_topology",
                             {"topology", "min_health", "unmet_kwh", "spof_ticks",
                              "partial_ticks"});
  std::printf("%-12s %12s %12s %12s %14s\n", "topology", "min health", "unmet kWh",
              "SPOF ticks", "partial ticks");
  for (const auto& [name, r] :
       {std::pair<const char*, const TopoResult&>{"per-server", dist},
        std::pair<const char*, const TopoResult&>{"per-rack", racked},
        std::pair<const char*, const TopoResult&>{"centralized", cent}}) {
    std::printf("%-12s %12.4f %12.2f %12ld %14ld\n", name, r.health,
                r.unmet_wh / 1000.0, r.spof_ticks, r.partial_ticks);
    csv.write_row({name, util::CsvWriter::cell(r.health),
                   util::CsvWriter::cell(r.unmet_wh / 1000.0),
                   util::CsvWriter::cell(static_cast<double>(r.spof_ticks)),
                   util::CsvWriter::cell(static_cast<double>(r.partial_ticks))});
  }

  std::printf("\nfinding: distributed degrades gracefully: %ld of its outage "
              "minutes are partial (some nodes stay up) and it has %ld fleet-wide "
              "minutes vs %ld for the shared bank, whose every outage is a "
              "single point of failure (the paper's SS II / VI-E argument).\n",
              dist.partial_ticks, dist.spof_ticks, cent.spof_ticks);
  bench::print_footer();
  return 0;
}
