// Fig 4 — measured battery capacity (stored energy per charging cycle) drop
// due to aging over 6 months. Paper: effectively stored energy per cycle
// drops ~14% under aggressive usage; end-of-life is 80% of initial capacity.

#include "bench_util.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace baat;
  bench::print_header("Fig 4 — per-cycle deliverable energy over 6 months (worst node)",
                      "~14% drop in stored energy per cycle under aggressive usage");

  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.policy = core::PolicyKind::EBuff;
  sim::Cluster cluster{cfg};

  sim::MultiDayOptions opts;
  opts.days = 180;
  opts.weather = sim::mixed_weather(opts.days, 3, 2, 1);
  opts.probe_every_days = 30;
  opts.keep_days = false;
  const sim::MultiDayResult run = sim::run_multi_day(cluster, opts);

  const battery::ProbeResult fresh = battery::run_probe(
      battery::Battery{cfg.bank.chemistry, cfg.bank.aging, cfg.bank.thermal});

  auto csv = bench::open_csv(
      "fig04_capacity_aging",
      {"month", "energy_per_cycle_wh", "capacity_fraction", "energy_drop_pct"});

  std::printf("%6s %16s %16s %12s\n", "month", "Wh/cycle", "capacity(C/C0)", "drop(%)");
  std::printf("%6d %16.1f %16.3f %12.2f\n", 0, fresh.energy_per_cycle.value(),
              fresh.capacity_fraction, 0.0);
  double last_drop = 0.0;
  for (const sim::MonthlyProbe& p : run.monthly) {
    last_drop = (1.0 - p.energy_per_cycle_wh / fresh.energy_per_cycle.value()) * 100.0;
    std::printf("%6d %16.1f %16.3f %12.2f\n", p.month, p.energy_per_cycle_wh,
                p.capacity_fraction, last_drop);
    csv.write_row({util::CsvWriter::cell(static_cast<double>(p.month)),
                   util::CsvWriter::cell(p.energy_per_cycle_wh),
                   util::CsvWriter::cell(p.capacity_fraction),
                   util::CsvWriter::cell(last_drop)});
  }

  const bool eol = run.monthly.back().capacity_fraction <
                   0.80 * fresh.capacity_fraction;
  std::printf("\nmeasured: %.1f%% energy-per-cycle drop at month 6 (paper ~14%%); "
              "end-of-life (80%% rule [30]): %s\n",
              last_drop, eol ? "reached" : "not yet reached");
  bench::print_footer();
  return 0;
}
