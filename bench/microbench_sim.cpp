// google-benchmark microbenchmarks of the simulator's hot paths: battery
// stepping, power routing and whole-cluster days. These bound how much
// wall-clock the figure benches and multi-month studies cost. The BM_Obs*
// benches bound the cost of the observability layer itself — compare
// BM_ClusterDay against BM_ClusterDayTraced for the end-to-end overhead.

#include <benchmark/benchmark.h>

#include <numeric>

#include "battery/battery.hpp"
#include "battery/fleet.hpp"
#include "obs/obs.hpp"
#include "power/router.hpp"
#include "sim/cluster.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace baat;

void BM_BatteryStep(benchmark::State& state) {
  battery::Battery bat{battery::LeadAcidParams{}, battery::AgingParams{},
                       battery::ThermalParams{}, 1.0, 1.0, 0.7};
  double sign = 1.0;
  for (auto _ : state) {
    // Alternate charge/discharge so SoC stays in range forever.
    const auto res = bat.step(util::amperes(5.0 * sign), util::minutes(1.0));
    benchmark::DoNotOptimize(res.terminal_voltage);
    if (bat.soc() < 0.2) sign = -1.0;
    if (bat.soc() > 0.9) sign = 1.0;
  }
}
BENCHMARK(BM_BatteryStep);

void BM_FleetStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  battery::FleetState fleet{battery::LeadAcidParams{}, battery::AgingParams{},
                            battery::ThermalParams{}};
  for (std::size_t i = 0; i < n; ++i) {
    fleet.add_cell(1.0 + 0.001 * static_cast<double>(i % 7), 1.0, 0.7);
  }
  std::vector<double> sign(n, 1.0);
  std::vector<util::Amperes> req(n);
  std::vector<battery::StepResult> res(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) req[i] = util::Amperes{5.0 * sign[i]};
    battery::fleet_step(fleet, req, util::minutes(1.0), res);
    benchmark::DoNotOptimize(res.data());
    for (std::size_t i = 0; i < n; ++i) {
      if (fleet.cell_soc(i) < 0.2) sign[i] = -1.0;
      if (fleet.cell_soc(i) > 0.9) sign[i] = 1.0;
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FleetStep)->Arg(1)->Arg(6)->Arg(48)->Arg(384);

void BM_FleetStepFast(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  battery::FleetState fleet{battery::LeadAcidParams{}, battery::AgingParams{},
                            battery::ThermalParams{}, battery::MathMode::Fast};
  for (std::size_t i = 0; i < n; ++i) {
    fleet.add_cell(1.0 + 0.001 * static_cast<double>(i % 7), 1.0, 0.7);
  }
  std::vector<double> sign(n, 1.0);
  std::vector<util::Amperes> req(n);
  std::vector<battery::StepResult> res(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) req[i] = util::Amperes{5.0 * sign[i]};
    battery::fleet_step(fleet, req, util::minutes(1.0), res);
    benchmark::DoNotOptimize(res.data());
    for (std::size_t i = 0; i < n; ++i) {
      if (fleet.cell_soc(i) < 0.2) sign[i] = -1.0;
      if (fleet.cell_soc(i) > 0.9) sign[i] = 1.0;
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FleetStepFast)->Arg(48);

void BM_RouterTick(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<battery::Battery> bats;
  for (std::size_t i = 0; i < n; ++i) {
    bats.emplace_back(battery::LeadAcidParams{}, battery::AgingParams{},
                      battery::ThermalParams{}, 1.0, 1.0, 0.7);
  }
  std::vector<util::Watts> demands(n, util::watts(110.0));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (auto _ : state) {
    const auto r = power::route_power(util::watts(400.0), demands, bats, order,
                                      power::RouterParams{}, util::minutes(1.0));
    benchmark::DoNotOptimize(r.solar_curtailed);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_RouterTick)->Arg(6)->Arg(24)->Arg(96);

void BM_ClusterDay(benchmark::State& state) {
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.policy = static_cast<core::PolicyKind>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Cluster cluster{cfg};
    state.ResumeTiming();
    const auto r = cluster.run_day(solar::DayType::Cloudy);
    benchmark::DoNotOptimize(r.throughput_work);
  }
}
BENCHMARK(BM_ClusterDay)
    ->Arg(static_cast<int>(core::PolicyKind::EBuff))
    ->Arg(static_cast<int>(core::PolicyKind::Baat))
    ->Unit(benchmark::kMillisecond);

void BM_ClusterDayTraced(benchmark::State& state) {
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.policy = static_cast<core::PolicyKind>(state.range(0));
  obs::global_trace().set_capacity(obs::TraceBuffer::kDefaultCapacity);
  obs::set_trace_enabled(true);
  obs::set_profiling_enabled(true);
  for (auto _ : state) {
    state.PauseTiming();
    sim::Cluster cluster{cfg};
    state.ResumeTiming();
    const auto r = cluster.run_day(solar::DayType::Cloudy);
    benchmark::DoNotOptimize(r.throughput_work);
  }
  obs::set_trace_enabled(false);
  obs::set_profiling_enabled(false);
  obs::global_trace().clear();
}
BENCHMARK(BM_ClusterDayTraced)
    ->Arg(static_cast<int>(core::PolicyKind::Baat))
    ->Unit(benchmark::kMillisecond);

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("bench.counter");
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramAdd(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("bench.hist", obs::duration_bounds_ns());
  double v = 1.0;
  for (auto _ : state) {
    h.add(v);
    v = v < 1e9 ? v * 3.0 : 1.0;
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_ObsHistogramAdd);

void BM_ObsTimerDisabled(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("bench.timer_ns", obs::duration_bounds_ns());
  obs::set_profiling_enabled(false);
  for (auto _ : state) {
    obs::ScopedTimer t{h};
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ObsTimerDisabled);

void BM_ObsTimerEnabled(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("bench.timer_ns", obs::duration_bounds_ns());
  obs::set_profiling_enabled(true);
  for (auto _ : state) {
    obs::ScopedTimer t{h};
    benchmark::DoNotOptimize(t);
  }
  obs::set_profiling_enabled(false);
}
BENCHMARK(BM_ObsTimerEnabled);

void BM_ObsTraceEmitDisabled(benchmark::State& state) {
  obs::set_trace_enabled(false);
  for (auto _ : state) {
    obs::emit(obs::EventKind::JobDeploy, 3, 1.0);
  }
}
BENCHMARK(BM_ObsTraceEmitDisabled);

void BM_ObsTraceEmit(benchmark::State& state) {
  obs::global_trace().set_capacity(4096);
  obs::set_trace_enabled(true);
  for (auto _ : state) {
    obs::emit(obs::EventKind::JobDeploy, 3, 1.0, "web");
  }
  obs::set_trace_enabled(false);
  obs::global_trace().set_capacity(obs::TraceBuffer::kDefaultCapacity);
}
BENCHMARK(BM_ObsTraceEmit);

}  // namespace
