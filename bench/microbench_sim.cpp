// google-benchmark microbenchmarks of the simulator's hot paths: battery
// stepping, power routing and whole-cluster days. These bound how much
// wall-clock the figure benches and multi-month studies cost.

#include <benchmark/benchmark.h>

#include <numeric>

#include "battery/battery.hpp"
#include "power/router.hpp"
#include "sim/cluster.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace baat;

void BM_BatteryStep(benchmark::State& state) {
  battery::Battery bat{battery::LeadAcidParams{}, battery::AgingParams{},
                       battery::ThermalParams{}, 1.0, 1.0, 0.7};
  double sign = 1.0;
  for (auto _ : state) {
    // Alternate charge/discharge so SoC stays in range forever.
    const auto res = bat.step(util::amperes(5.0 * sign), util::minutes(1.0));
    benchmark::DoNotOptimize(res.terminal_voltage);
    if (bat.soc() < 0.2) sign = -1.0;
    if (bat.soc() > 0.9) sign = 1.0;
  }
}
BENCHMARK(BM_BatteryStep);

void BM_RouterTick(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<battery::Battery> bats;
  for (std::size_t i = 0; i < n; ++i) {
    bats.emplace_back(battery::LeadAcidParams{}, battery::AgingParams{},
                      battery::ThermalParams{}, 1.0, 1.0, 0.7);
  }
  std::vector<util::Watts> demands(n, util::watts(110.0));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (auto _ : state) {
    const auto r = power::route_power(util::watts(400.0), demands, bats, order,
                                      power::RouterParams{}, util::minutes(1.0));
    benchmark::DoNotOptimize(r.solar_curtailed);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_RouterTick)->Arg(6)->Arg(24)->Arg(96);

void BM_ClusterDay(benchmark::State& state) {
  sim::ScenarioConfig cfg = sim::prototype_scenario();
  cfg.policy = static_cast<core::PolicyKind>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Cluster cluster{cfg};
    state.ResumeTiming();
    const auto r = cluster.run_day(solar::DayType::Cloudy);
    benchmark::DoNotOptimize(r.throughput_work);
  }
}
BENCHMARK(BM_ClusterDay)
    ->Arg(static_cast<int>(core::PolicyKind::EBuff))
    ->Arg(static_cast<int>(core::PolicyKind::Baat))
    ->Unit(benchmark::kMillisecond);

}  // namespace
